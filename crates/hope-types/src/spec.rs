//! Adaptive speculation control: the [`SpecPolicy`] configuration and the
//! deterministic fixed-point controller state ([`SpecController`]) each
//! HOPElib maintains from the rollback-attribution signal.
//!
//! The paper's optimism is unconditional: every `guess` eagerly returns
//! `true`, whatever the odds. Under high deny rates that turns throughput
//! into rollback churn. The controller closes the loop: every resolution a
//! process *observes* — a deny charged through the attribution path, an
//! affirm implied by one of its intervals finalizing — feeds a deny-rate
//! EWMA, kept both per assumption identifier and as a per-process
//! aggregate (AIDs are one-resolution, so a fresh AID has no history of
//! its own; the aggregate is what says "optimism has stopped paying for
//! this process"). When the EWMA crosses the configured threshold the
//! process enters the *pessimistic regime* for its guesses — it waits for
//! the definite value instead of speculating, the blocking discipline of
//! pessimistic transactional memory — and leaves it again once the EWMA
//! recovers below `threshold - hysteresis`.
//!
//! All arithmetic is integer Q16 fixed point ([`SPEC_EWMA_ONE`] = 1.0) so
//! the simulated and threaded runtimes agree bit-for-bit per seed; no
//! float ever enters the hot path.

use std::collections::BTreeMap;
use std::fmt;

use crate::{AidId, HopeError};

/// Fixed-point scale of the controller: `1.0` in Q16.
pub const SPEC_EWMA_ONE: u32 = 1 << 16;

/// EWMA gain as a right shift: each observation moves the average by
/// `diff >> SPEC_EWMA_GAIN_SHIFT`, i.e. a gain of 1/8.
pub const SPEC_EWMA_GAIN_SHIFT: u32 = 3;

/// Per-AID stat entries kept before the oldest (lowest AID — creation
/// order) is evicted. AIDs are one-resolution, so old entries are dead
/// weight; the aggregate EWMA carries the long-term signal.
pub const SPEC_PER_AID_CAP: usize = 1024;

/// When (and whether) `guess` speculates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpecPolicy {
    /// The paper's behaviour: every guess eagerly returns `true`. The
    /// controller is inert and the guess path is byte-for-byte the
    /// pre-controller one.
    #[default]
    AlwaysOptimistic,
    /// Closed-loop throttling. Guesses are optimistic until the observed
    /// deny-rate EWMA (per AID or per process) reaches
    /// `deny_ewma_threshold`, pessimistic until it falls back to
    /// `deny_ewma_threshold - hysteresis`, and the unaffirmed guess-chain
    /// depth is capped at `max_depth` throughout.
    Adaptive {
        /// Q16 deny-rate at which optimism stops ([`SPEC_EWMA_ONE`] =
        /// every observation a deny). Must be in `(0, SPEC_EWMA_ONE)`.
        deny_ewma_threshold: u32,
        /// Maximum non-definite intervals a process may hold when opening
        /// a new explicit guess; further guesses wait. Must be ≥ 1.
        max_depth: u32,
        /// Q16 width of the hysteresis band: optimism resumes only below
        /// `deny_ewma_threshold - hysteresis`, preventing regime flapping
        /// around the threshold. Must be < `deny_ewma_threshold`.
        hysteresis: u32,
    },
    /// Every guess waits for the definite value: no speculation at all.
    /// The wait-free property of `guess` is deliberately traded away.
    Pessimistic,
}

/// Converts a probability in `[0, 1]` to Q16, rejecting NaN/∞.
fn q16(name: &str, value: f64) -> Result<u32, HopeError> {
    if !value.is_finite() {
        return Err(HopeError::InvalidSpecPolicy(format!(
            "{name} must be finite, got {value}"
        )));
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(HopeError::InvalidSpecPolicy(format!(
            "{name} must be in [0, 1], got {value}"
        )));
    }
    Ok((value * SPEC_EWMA_ONE as f64).round() as u32)
}

impl SpecPolicy {
    /// Builds an [`SpecPolicy::Adaptive`] policy from float rates,
    /// validating as it converts: `deny_rate_threshold` in `(0, 1)`,
    /// `max_depth >= 1`, `hysteresis` in `[0, deny_rate_threshold)`; NaN
    /// and ∞ are rejected.
    pub fn adaptive(
        deny_rate_threshold: f64,
        max_depth: u32,
        hysteresis: f64,
    ) -> Result<SpecPolicy, HopeError> {
        let policy = SpecPolicy::Adaptive {
            deny_ewma_threshold: q16("deny_rate_threshold", deny_rate_threshold)?,
            max_depth,
            hysteresis: q16("hysteresis", hysteresis)?,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Checks the policy's parameters, mirroring the `FaultPlan`
    /// validation precedent: reject up front what would otherwise be
    /// undefined throttling behaviour mid-run.
    pub fn validate(&self) -> Result<(), HopeError> {
        let SpecPolicy::Adaptive {
            deny_ewma_threshold,
            max_depth,
            hysteresis,
        } = *self
        else {
            return Ok(());
        };
        if deny_ewma_threshold == 0 || deny_ewma_threshold >= SPEC_EWMA_ONE {
            return Err(HopeError::InvalidSpecPolicy(format!(
                "deny_ewma_threshold must be in (0, {SPEC_EWMA_ONE}) (Q16, exclusive), \
                 got {deny_ewma_threshold}"
            )));
        }
        if max_depth == 0 {
            return Err(HopeError::InvalidSpecPolicy(
                "max_depth must be >= 1 (0 would forbid every guess forever)".into(),
            ));
        }
        if hysteresis >= deny_ewma_threshold {
            return Err(HopeError::InvalidSpecPolicy(format!(
                "hysteresis ({hysteresis}) must be smaller than deny_ewma_threshold \
                 ({deny_ewma_threshold}); an equal-or-wider band could never re-enable optimism"
            )));
        }
        Ok(())
    }

    /// The guess-chain depth cap, when the policy imposes one.
    pub fn max_depth(&self) -> Option<u32> {
        match *self {
            SpecPolicy::Adaptive { max_depth, .. } => Some(max_depth),
            _ => None,
        }
    }
}

impl fmt::Display for SpecPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SpecPolicy::AlwaysOptimistic => write!(f, "always-optimistic"),
            SpecPolicy::Adaptive {
                deny_ewma_threshold,
                max_depth,
                hysteresis,
            } => write!(
                f,
                "adaptive(threshold={deny_ewma_threshold}/{SPEC_EWMA_ONE}, \
                 max_depth={max_depth}, hysteresis={hysteresis}/{SPEC_EWMA_ONE})"
            ),
            SpecPolicy::Pessimistic => write!(f, "pessimistic"),
        }
    }
}

/// One Q16 EWMA step toward `sample`. Rounds away from the current value
/// (ceiling upward, floor downward) so the average converges *exactly* to
/// a sustained sample instead of parking `2^shift - 1` short of it.
pub fn ewma_step(ewma: u32, sample: u32) -> u32 {
    let diff = sample as i64 - ewma as i64;
    let step = if diff >= 0 {
        (diff + ((1 << SPEC_EWMA_GAIN_SHIFT) - 1)) >> SPEC_EWMA_GAIN_SHIFT
    } else {
        diff >> SPEC_EWMA_GAIN_SHIFT
    };
    (ewma as i64 + step) as u32
}

/// Deny-rate statistics for one key (one AID, or the process aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecStats {
    /// Q16 deny-rate EWMA (0 = always affirmed, [`SPEC_EWMA_ONE`] =
    /// always denied).
    pub ewma: u32,
    /// Deny observations folded in.
    pub denies: u64,
    /// Affirm observations folded in.
    pub affirms: u64,
    /// True while this key holds its guesses in the pessimistic regime.
    pub throttled: bool,
}

impl SpecStats {
    /// Folds one observation in and applies the hysteresis band; returns
    /// `Some(new_state)` when the throttle flipped.
    fn observe(&mut self, denied: bool, threshold_band: Option<(u32, u32)>) -> Option<bool> {
        if denied {
            self.denies += 1;
        } else {
            self.affirms += 1;
        }
        self.ewma = ewma_step(self.ewma, if denied { SPEC_EWMA_ONE } else { 0 });
        let (threshold, hysteresis) = threshold_band?;
        if !self.throttled && self.ewma >= threshold {
            self.throttled = true;
            Some(true)
        } else if self.throttled && self.ewma <= threshold.saturating_sub(hysteresis) {
            self.throttled = false;
            Some(false)
        } else {
            None
        }
    }
}

/// What one [`SpecController::observe`] call did, for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecObservation {
    /// Post-observation EWMA of the observed AID.
    pub aid_ewma: u32,
    /// Post-observation EWMA of the process aggregate.
    pub process_ewma: u32,
    /// The observed AID's throttle flipped to this state.
    pub aid_flip: Option<bool>,
    /// The process aggregate's throttle flipped to this state.
    pub process_flip: Option<bool>,
}

/// Plain-value copy of a process's controller state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecSnapshot {
    /// Aggregate deny-rate EWMA of the process (Q16).
    pub process_ewma: u32,
    /// True while the process aggregate holds guesses pessimistic.
    pub process_throttled: bool,
    /// Deny observations (per-process total).
    pub denies: u64,
    /// Affirm observations (per-process total).
    pub affirms: u64,
    /// Throttle regime transitions, per-AID and aggregate combined.
    pub flips: u64,
    /// Doomed speculative work cancelled early by this process: stale
    /// tagged messages discarded before opening an interval, plus guesses
    /// on known-denied AIDs short-circuited to `false`.
    pub cancelled: u64,
    /// AIDs currently tracked in the per-AID table.
    pub tracked_aids: u64,
}

/// The per-process speculation controller: per-AID and aggregate deny-rate
/// EWMAs with hysteresis, plus the early-cancellation counter. Lives in
/// each HOPElib's `LibState`; all updates are integer-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecController {
    policy: SpecPolicy,
    per_aid: BTreeMap<AidId, SpecStats>,
    process: SpecStats,
    flips: u64,
    cancelled: u64,
}

impl SpecController {
    /// A fresh controller (EWMAs at zero: optimism assumed to pay until
    /// observed otherwise).
    pub fn new(policy: SpecPolicy) -> Self {
        SpecController {
            policy,
            per_aid: BTreeMap::new(),
            process: SpecStats::default(),
            flips: 0,
            cancelled: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> SpecPolicy {
        self.policy
    }

    /// True when the controller can ever change behaviour — callers skip
    /// all bookkeeping under [`SpecPolicy::AlwaysOptimistic`] so the
    /// default guess path stays byte-identical to the pre-controller one.
    pub fn is_active(&self) -> bool {
        self.policy != SpecPolicy::AlwaysOptimistic
    }

    fn band(&self) -> Option<(u32, u32)> {
        match self.policy {
            SpecPolicy::Adaptive {
                deny_ewma_threshold,
                hysteresis,
                ..
            } => Some((deny_ewma_threshold, hysteresis)),
            _ => None,
        }
    }

    /// Folds one observed resolution of `aid` into the per-AID and
    /// aggregate EWMAs, applying hysteresis to both.
    pub fn observe(&mut self, aid: AidId, denied: bool) -> SpecObservation {
        let band = self.band();
        let entry = self.per_aid.entry(aid).or_default();
        let aid_flip = entry.observe(denied, band);
        let aid_ewma = entry.ewma;
        if self.per_aid.len() > SPEC_PER_AID_CAP {
            self.per_aid.pop_first();
        }
        let process_flip = self.process.observe(denied, band);
        self.flips += aid_flip.is_some() as u64 + process_flip.is_some() as u64;
        SpecObservation {
            aid_ewma,
            process_ewma: self.process.ewma,
            aid_flip,
            process_flip,
        }
    }

    /// Whether a `guess(aid)` must take the pessimistic regime right now.
    pub fn is_throttled(&self, aid: AidId) -> bool {
        match self.policy {
            SpecPolicy::AlwaysOptimistic => false,
            SpecPolicy::Pessimistic => true,
            SpecPolicy::Adaptive { .. } => {
                self.process.throttled || self.per_aid.get(&aid).is_some_and(|s| s.throttled)
            }
        }
    }

    /// The depth cap, when the policy imposes one.
    pub fn max_depth(&self) -> Option<u32> {
        self.policy.max_depth()
    }

    /// Counts one early cancellation of doomed speculative work.
    pub fn count_cancelled(&mut self) {
        self.cancelled += 1;
    }

    /// Doomed work cancelled early by this process so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Per-AID stats, when `aid` is still tracked.
    pub fn aid_stats(&self, aid: AidId) -> Option<SpecStats> {
        self.per_aid.get(&aid).copied()
    }

    /// Plain-value snapshot for reports and cross-runtime comparisons.
    pub fn snapshot(&self) -> SpecSnapshot {
        SpecSnapshot {
            process_ewma: self.process.ewma,
            process_throttled: self.process.throttled,
            denies: self.process.denies,
            affirms: self.process.affirms,
            flips: self.flips,
            cancelled: self.cancelled,
            tracked_aids: self.per_aid.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn aid(n: u64) -> AidId {
        AidId::from_raw(ProcessId::from_raw(n))
    }

    #[test]
    fn ewma_converges_exactly_in_both_directions() {
        let mut e = 0;
        for _ in 0..200 {
            e = ewma_step(e, SPEC_EWMA_ONE);
        }
        assert_eq!(e, SPEC_EWMA_ONE, "sustained denies reach exactly 1.0");
        for _ in 0..200 {
            e = ewma_step(e, 0);
        }
        assert_eq!(e, 0, "sustained affirms reach exactly 0.0");
    }

    #[test]
    fn ewma_first_deny_moves_by_one_gain() {
        assert_eq!(
            ewma_step(0, SPEC_EWMA_ONE),
            SPEC_EWMA_ONE >> SPEC_EWMA_GAIN_SHIFT
        );
    }

    #[test]
    fn adaptive_constructor_validates() {
        assert!(SpecPolicy::adaptive(0.5, 4, 0.1).is_ok());
        for bad in [f64::NAN, f64::INFINITY, -0.1, 1.5] {
            assert!(matches!(
                SpecPolicy::adaptive(bad, 4, 0.1),
                Err(HopeError::InvalidSpecPolicy(_))
            ));
        }
        assert!(matches!(
            SpecPolicy::adaptive(0.0, 4, 0.0),
            Err(HopeError::InvalidSpecPolicy(_))
        ));
        assert!(matches!(
            SpecPolicy::adaptive(0.5, 0, 0.1),
            Err(HopeError::InvalidSpecPolicy(_))
        ));
        assert!(
            matches!(
                SpecPolicy::adaptive(0.5, 4, 0.5),
                Err(HopeError::InvalidSpecPolicy(_)),
            ),
            "hysteresis as wide as the threshold can never re-enable optimism"
        );
        assert!(matches!(
            SpecPolicy::adaptive(0.5, 4, f64::NAN),
            Err(HopeError::InvalidSpecPolicy(_))
        ));
    }

    #[test]
    fn validate_rejects_threshold_of_one() {
        let p = SpecPolicy::Adaptive {
            deny_ewma_threshold: SPEC_EWMA_ONE,
            max_depth: 1,
            hysteresis: 0,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn non_adaptive_policies_always_validate() {
        assert!(SpecPolicy::AlwaysOptimistic.validate().is_ok());
        assert!(SpecPolicy::Pessimistic.validate().is_ok());
        assert_eq!(SpecPolicy::AlwaysOptimistic.max_depth(), None);
        assert_eq!(SpecPolicy::Pessimistic.max_depth(), None);
    }

    #[test]
    fn hysteresis_gates_the_flip_back() {
        let policy = SpecPolicy::Adaptive {
            deny_ewma_threshold: SPEC_EWMA_ONE / 2,
            max_depth: 4,
            hysteresis: SPEC_EWMA_ONE / 4,
        };
        let mut c = SpecController::new(policy);
        let x = aid(1);
        assert!(!c.is_throttled(x));
        // Deny until the per-AID EWMA crosses 0.5.
        let mut flipped_on = 0;
        for _ in 0..10 {
            let obs = c.observe(x, true);
            if obs.aid_flip == Some(true) {
                flipped_on += 1;
            }
        }
        assert_eq!(flipped_on, 1, "one on-flip, no flapping");
        assert!(c.is_throttled(x));
        // One affirm leaves the EWMA inside the band: still throttled.
        c.observe(x, false);
        assert!(c.is_throttled(x), "hysteresis holds inside the band");
        // Affirm until below threshold - hysteresis (0.25).
        for _ in 0..10 {
            c.observe(x, false);
        }
        assert!(!c.is_throttled(x));
        let snap = c.snapshot();
        assert!(snap.flips >= 2, "on and off transitions counted");
    }

    #[test]
    fn process_aggregate_throttles_fresh_aids() {
        let policy = SpecPolicy::adaptive(0.5, 4, 0.1).unwrap();
        let mut c = SpecController::new(policy);
        // Each round a *different* AID is denied: no single AID ever
        // accumulates history, but the aggregate does.
        for n in 0..10 {
            c.observe(aid(n), true);
        }
        let fresh = aid(999);
        assert!(
            c.is_throttled(fresh),
            "aggregate EWMA throttles an AID never seen before"
        );
    }

    #[test]
    fn pessimistic_throttles_and_optimistic_never_does() {
        let mut p = SpecController::new(SpecPolicy::Pessimistic);
        assert!(p.is_throttled(aid(1)));
        let mut o = SpecController::new(SpecPolicy::AlwaysOptimistic);
        assert!(!o.is_throttled(aid(1)));
        assert!(!o.is_active());
        assert!(p.is_active());
        // Observations never flip them.
        for _ in 0..20 {
            o.observe(aid(1), true);
            p.observe(aid(1), false);
        }
        assert!(!o.is_throttled(aid(1)));
        assert!(p.is_throttled(aid(1)));
    }

    #[test]
    fn per_aid_table_is_capped() {
        let mut c = SpecController::new(SpecPolicy::adaptive(0.9, 4, 0.0).unwrap());
        for n in 0..(SPEC_PER_AID_CAP as u64 + 100) {
            c.observe(aid(n), false);
        }
        assert_eq!(c.snapshot().tracked_aids, SPEC_PER_AID_CAP as u64);
        assert!(c.aid_stats(aid(0)).is_none(), "oldest entries evicted");
        assert!(c.aid_stats(aid(SPEC_PER_AID_CAP as u64 + 50)).is_some());
    }

    #[test]
    fn observation_is_deterministic() {
        let policy = SpecPolicy::adaptive(0.4, 2, 0.05).unwrap();
        let run = || {
            let mut c = SpecController::new(policy);
            let mut trajectory = Vec::new();
            for n in 0..64u64 {
                let obs = c.observe(aid(n % 7), n % 3 == 0);
                trajectory.push((
                    obs.aid_ewma,
                    obs.process_ewma,
                    obs.aid_flip,
                    obs.process_flip,
                ));
            }
            (trajectory, c.snapshot())
        };
        assert_eq!(run(), run(), "bit-identical across runs");
    }

    #[test]
    fn display_names_the_regime() {
        assert_eq!(
            SpecPolicy::AlwaysOptimistic.to_string(),
            "always-optimistic"
        );
        assert_eq!(SpecPolicy::Pessimistic.to_string(), "pessimistic");
        let a = SpecPolicy::adaptive(0.5, 3, 0.1).unwrap();
        assert!(a.to_string().contains("max_depth=3"));
    }
}

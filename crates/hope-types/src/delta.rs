//! Delta encoding for piggybacked dependency sets.
//!
//! Every user message carries the sender's cumulative dependency tag
//! ([`DepTag`](crate::DepTag)). Deep speculation makes that tag large and
//! slow-changing: consecutive messages on one link usually differ by at
//! most an AID or two, yet the naive wire form re-ships the whole set
//! every send — the on-the-wire face of the §6 quadratic cost.
//!
//! [`TagEncoder`]/[`TagDecoder`] fix this per link. The encoder remembers
//! the last tag the peer has *acknowledged* and emits a [`SetCoding`]:
//! either the set verbatim (`Full`) or its symmetric difference against
//! that acked base (`Delta { base_seq, add, del }`). The decoder keeps a
//! bounded window of recently decoded sets keyed by link sequence number,
//! so it can resolve a delta even when envelopes arrive out of order.
//!
//! Loss is self-healing by construction: a delta is only emitted against
//! a base the peer has positively acknowledged, and when the base falls
//! outside the window (acks lost, peer restarted, long silence) the
//! encoder falls back to `Full`, which resynchronizes both sides
//! unconditionally. A crash/restart clears both directions' state
//! ([`TagEncoder::reset`]/[`TagDecoder::reset`]), forcing `Full` on the
//! first post-restart send.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};

use crate::{AidId, IdoSet, ProcessId};

/// How a dependency set travels on a link: verbatim, or as a delta
/// against an earlier set both ends hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetCoding {
    /// The whole set, shipped verbatim (also the resync path).
    Full {
        /// The encoded set.
        set: IdoSet,
    },
    /// The set expressed as edits against the set that travelled on this
    /// link with sequence number `base_seq`.
    Delta {
        /// Link sequence number of the base set.
        base_seq: u64,
        /// Members present now but absent from the base.
        add: IdoSet,
        /// Members present in the base but absent now.
        del: IdoSet,
    },
}

/// Wire size in bytes of a set shipped verbatim (`u32` count + one `u64`
/// per member), matching `put_ido` in the envelope codec.
pub fn full_set_wire_len(set: &IdoSet) -> usize {
    4 + 8 * set.len()
}

mod wire {
    pub const FULL: u8 = 1;
    pub const DELTA: u8 = 2;
}

fn put_set(buf: &mut BytesMut, set: &IdoSet) {
    buf.put_u32_le(set.len() as u32);
    for aid in set.iter() {
        buf.put_u64_le(aid.process().as_raw());
    }
}

fn read_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let bytes = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn read_set(buf: &[u8], at: &mut usize) -> Option<IdoSet> {
    let n = read_u32(buf, at)?;
    let mut set = IdoSet::new();
    for _ in 0..n {
        set.insert(AidId::from_raw(ProcessId::from_raw(read_u64(buf, at)?)));
    }
    Some(set)
}

impl SetCoding {
    /// Number of bytes [`SetCoding::encode`] produces, without encoding.
    pub fn wire_len(&self) -> usize {
        match self {
            SetCoding::Full { set } => 1 + full_set_wire_len(set),
            SetCoding::Delta { add, del, .. } => {
                1 + 8 + full_set_wire_len(add) + full_set_wire_len(del)
            }
        }
    }

    /// Serializes in the workspace's little-endian wire idiom.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        match self {
            SetCoding::Full { set } => {
                buf.put_u8(wire::FULL);
                put_set(&mut buf, set);
            }
            SetCoding::Delta { base_seq, add, del } => {
                buf.put_u8(wire::DELTA);
                buf.put_u64_le(*base_seq);
                put_set(&mut buf, add);
                put_set(&mut buf, del);
            }
        }
        buf.freeze()
    }

    /// Parses a coding produced by [`SetCoding::encode`]; rejects
    /// truncated, malformed or padded input.
    pub fn decode(buf: &[u8]) -> Option<SetCoding> {
        let mut at = 0usize;
        let b = *buf.get(at)?;
        at += 1;
        let coding = match b {
            wire::FULL => SetCoding::Full {
                set: read_set(buf, &mut at)?,
            },
            wire::DELTA => SetCoding::Delta {
                base_seq: read_u64(buf, &mut at)?,
                add: read_set(buf, &mut at)?,
                del: read_set(buf, &mut at)?,
            },
            _ => return None,
        };
        if at == buf.len() {
            Some(coding)
        } else {
            None
        }
    }
}

/// Default history window for both codec sides: how far back (in link
/// sequence numbers) a delta base may lie, and how many decoded sets the
/// receiver retains to resolve reordered deltas.
pub const DEFAULT_CODEC_WINDOW: u64 = 32;

/// Sender side of the per-link dependency-set codec.
#[derive(Debug, Clone)]
pub struct TagEncoder {
    /// The newest (seq, set) this link's peer has acknowledged receiving.
    base: Option<(u64, IdoSet)>,
    /// Sets in flight: sent but not yet acknowledged, keyed by seq.
    sent: BTreeMap<u64, IdoSet>,
    window: u64,
}

impl TagEncoder {
    /// A fresh encoder with the given history window.
    pub fn new(window: u64) -> Self {
        TagEncoder {
            base: None,
            sent: BTreeMap::new(),
            window: window.max(1),
        }
    }

    /// Encodes `set` for the envelope carrying link sequence `seq`.
    /// Emits a delta only when an acked base exists and is recent enough
    /// for the peer to still hold it; otherwise ships the set verbatim.
    pub fn encode(&mut self, seq: u64, set: &IdoSet) -> SetCoding {
        let coding = match &self.base {
            Some((base_seq, base)) if seq.saturating_sub(*base_seq) <= self.window => {
                SetCoding::Delta {
                    base_seq: *base_seq,
                    add: set.difference(base),
                    del: base.difference(set),
                }
            }
            _ => SetCoding::Full { set: set.clone() },
        };
        self.sent.insert(seq, set.clone());
        // Anything the peer could no longer use as a base is dead weight.
        let floor = seq.saturating_sub(self.window);
        while let Some((&first, _)) = self.sent.first_key_value() {
            if first < floor && Some(first) != self.base.as_ref().map(|(s, _)| *s) {
                self.sent.remove(&first);
            } else {
                break;
            }
        }
        coding
    }

    /// Records that the peer acknowledged the envelope with sequence
    /// `seq`: its set becomes the preferred delta base.
    pub fn on_ack(&mut self, seq: u64) {
        if self.base.as_ref().is_some_and(|(b, _)| *b >= seq) {
            return;
        }
        if let Some(set) = self.sent.get(&seq).cloned() {
            self.base = Some((seq, set));
            self.sent = self.sent.split_off(&seq);
        }
    }

    /// Forgets all link state (peer crash/restart): the next encode is
    /// forced `Full`, resynchronizing the pair.
    pub fn reset(&mut self) {
        self.base = None;
        self.sent.clear();
    }
}

impl Default for TagEncoder {
    fn default() -> Self {
        TagEncoder::new(DEFAULT_CODEC_WINDOW)
    }
}

/// Receiver side of the per-link dependency-set codec.
#[derive(Debug, Clone)]
pub struct TagDecoder {
    /// Recently decoded sets by link seq, retained as delta bases.
    decoded: BTreeMap<u64, IdoSet>,
    window: u64,
}

impl TagDecoder {
    /// A fresh decoder with the given history window.
    pub fn new(window: u64) -> Self {
        TagDecoder {
            decoded: BTreeMap::new(),
            window: window.max(1),
        }
    }

    /// Reconstructs the set carried by the envelope with sequence `seq`.
    /// Returns `None` when a delta references a base outside the retained
    /// window — the sender will have shipped (or will retransmit) a
    /// `Full` coding in that regime, so a well-behaved link never hits it.
    pub fn decode(&mut self, seq: u64, coding: &SetCoding) -> Option<IdoSet> {
        let set = match coding {
            SetCoding::Full { set } => set.clone(),
            SetCoding::Delta { base_seq, add, del } => {
                let base = self.decoded.get(base_seq)?;
                base.difference(del).union(add)
            }
        };
        self.decoded.insert(seq, set.clone());
        while self.decoded.len() as u64 > self.window {
            self.decoded.pop_first();
        }
        Some(set)
    }

    /// Forgets all link state (peer crash/restart).
    pub fn reset(&mut self) {
        self.decoded.clear();
    }
}

impl Default for TagDecoder {
    fn default() -> Self {
        TagDecoder::new(DEFAULT_CODEC_WINDOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(n: u64) -> AidId {
        AidId::from_raw(ProcessId::from_raw(n))
    }

    fn set(members: &[u64]) -> IdoSet {
        members.iter().map(|&n| aid(n)).collect()
    }

    #[test]
    fn first_send_is_full_then_deltas_after_ack() {
        let mut enc = TagEncoder::default();
        let c1 = enc.encode(1, &set(&[1, 2, 3]));
        assert!(matches!(c1, SetCoding::Full { .. }));
        // Unacked: still no usable base.
        let c2 = enc.encode(2, &set(&[1, 2, 3, 4]));
        assert!(matches!(c2, SetCoding::Full { .. }));
        enc.on_ack(1);
        let c3 = enc.encode(3, &set(&[1, 2, 3, 4]));
        assert_eq!(
            c3,
            SetCoding::Delta {
                base_seq: 1,
                add: set(&[4]),
                del: IdoSet::new(),
            }
        );
    }

    #[test]
    fn decoder_resolves_deltas_and_reordering() {
        let mut enc = TagEncoder::default();
        let mut dec = TagDecoder::default();
        let s1 = set(&[1, 2]);
        let s2 = set(&[2, 3, 4]);
        let s3 = set(&[3, 4]);
        let c1 = enc.encode(1, &s1);
        enc.on_ack(1);
        let c2 = enc.encode(2, &s2);
        let c3 = enc.encode(3, &s3);
        assert_eq!(dec.decode(1, &c1).unwrap(), s1);
        // Out-of-order arrival: seq 3 before seq 2. Both delta against 1.
        assert_eq!(dec.decode(3, &c3).unwrap(), s3);
        assert_eq!(dec.decode(2, &c2).unwrap(), s2);
    }

    #[test]
    fn stale_base_falls_back_to_full() {
        let mut enc = TagEncoder::new(4);
        let c = enc.encode(1, &set(&[1]));
        assert!(matches!(c, SetCoding::Full { .. }));
        enc.on_ack(1);
        // Base seq 1 is too old for seq 10 with window 4: resync.
        let c = enc.encode(10, &set(&[1, 2]));
        assert!(matches!(c, SetCoding::Full { .. }));
    }

    #[test]
    fn reset_forces_resync() {
        let mut enc = TagEncoder::default();
        let mut dec = TagDecoder::default();
        let c = enc.encode(1, &set(&[1]));
        dec.decode(1, &c).unwrap();
        enc.on_ack(1);
        enc.reset();
        dec.reset();
        let c = enc.encode(2, &set(&[1, 2]));
        assert!(matches!(c, SetCoding::Full { .. }));
        assert_eq!(dec.decode(2, &c).unwrap(), set(&[1, 2]));
    }

    #[test]
    fn decoder_rejects_base_outside_window() {
        let mut dec = TagDecoder::new(2);
        assert!(dec
            .decode(
                5,
                &SetCoding::Delta {
                    base_seq: 1,
                    add: set(&[9]),
                    del: IdoSet::new(),
                }
            )
            .is_none());
    }

    #[test]
    fn wire_roundtrip_and_len() {
        let samples = [
            SetCoding::Full { set: set(&[1, 2]) },
            SetCoding::Full { set: IdoSet::new() },
            SetCoding::Delta {
                base_seq: 7,
                add: set(&[3]),
                del: set(&[1, 2]),
            },
        ];
        for c in samples {
            let bytes = c.encode();
            assert_eq!(bytes.len(), c.wire_len());
            assert_eq!(SetCoding::decode(&bytes).unwrap(), c);
        }
        assert_eq!(SetCoding::decode(&[]), None);
        assert_eq!(SetCoding::decode(&[9]), None);
        let good = SetCoding::Full { set: set(&[1]) }.encode();
        let mut padded = good.to_vec();
        padded.push(0);
        assert_eq!(SetCoding::decode(&padded), None);
    }

    #[test]
    fn delta_is_smaller_for_slow_changing_large_sets() {
        let big: IdoSet = (0..64).map(aid).collect();
        let mut bigger = big.clone();
        bigger.insert(aid(100));
        let mut enc = TagEncoder::default();
        let full = enc.encode(1, &big);
        enc.on_ack(1);
        let delta = enc.encode(2, &bigger);
        assert!(delta.wire_len() < full.wire_len() / 10);
    }
}

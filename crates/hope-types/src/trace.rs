//! Causal trace layer: lifecycle events for speculation, rollback and the
//! wire, plus rollback **attribution** (who a rollback is causally charged
//! to and how much work it wasted).
//!
//! The trace is an append-only ring of [`TraceEvent`]s collected by a
//! [`TraceCollector`] that both runtimes and every HOPElib instance share.
//! Collection is disabled by default and gated by one relaxed atomic load,
//! so the hot path pays nothing when tracing is off; when enabled the ring
//! drops its oldest events once `capacity` is reached (the drop count is
//! reported so truncation is never silent).
//!
//! Every event carries a virtual-time stamp (deterministic under the
//! simulator) and a wall-clock stamp in nanoseconds since the collector's
//! epoch (monotonic, suitable for Chrome trace-event `ts` fields).
//!
//! Attribution ([`RollbackAttribution`]) is independent of the ring: it is
//! a small map from [`BlameKey`] (the denying AID, or the crashed process)
//! to [`WastedWork`] totals, accumulated at rollback time and surfaced in
//! `MetricsSnapshot`/`RunReport` even when event tracing is disabled.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{AidId, IntervalId, ProcessId, VirtualTime};

/// Default ring capacity used by [`TraceCollector::enable_default`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What happened, from the point of view of the process in
/// [`TraceEvent::pid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An AID process was created (`aid_init`).
    AidInit {
        /// The new assumption identifier.
        aid: AidId,
    },
    /// An explicit `guess(aid)` opened a speculative interval.
    Guess {
        /// The assumption guessed.
        aid: AidId,
        /// The interval the guess opened.
        interval: IntervalId,
    },
    /// A message receive implicitly guessed the AIDs on its tag.
    ImplicitGuess {
        /// Number of newly guessed AIDs on the tag.
        new_aids: u64,
        /// The interval the receive opened.
        interval: IntervalId,
    },
    /// `affirm(aid)` executed.
    Affirm {
        /// The assumption affirmed.
        aid: AidId,
    },
    /// `deny(aid)` executed.
    Deny {
        /// The assumption denied.
        aid: AidId,
    },
    /// `free_of(aid)` executed.
    FreeOf {
        /// The assumption dropped from the current interval.
        aid: AidId,
    },
    /// An AID process reached a terminal state (from the AID's own
    /// perspective; the resolving primitive is traced separately at the
    /// caller).
    AidResolved {
        /// The resolved assumption (the AID's own identity).
        aid: AidId,
        /// True when resolved `False` (denied), false for `True`.
        denied: bool,
    },
    /// A speculative interval opened (explicitly or implicitly).
    IntervalOpen {
        /// The new interval.
        interval: IntervalId,
        /// True when opened by a tagged receive rather than `guess`.
        implicit: bool,
    },
    /// An interval became definite (the commit point).
    IntervalFinalized {
        /// The finalized interval.
        interval: IntervalId,
    },
    /// A rollback began: intervals at and above `floor` are discarded.
    RollbackStart {
        /// First discarded interval.
        floor: IntervalId,
        /// The denying AID this rollback is charged to (`None` for
        /// crash-caused rollbacks).
        cause: Option<AidId>,
        /// True when the rollback recovers from a crash.
        crash: bool,
        /// Intervals discarded.
        discarded: u64,
        /// Replay-log operations removed.
        ops_discarded: u64,
        /// Sends among the removed operations (messages whose effects are
        /// now invalidated downstream).
        messages_invalidated: u64,
    },
    /// The user body restarted after a rollback (re-execution depth grows
    /// by one each time).
    Reexecution,
    /// Crash recovery replayed the durable log to the definite frontier.
    CrashRecovery,
    /// A user/protocol message was handed to the network.
    Send {
        /// Destination process.
        dst: ProcessId,
        /// Link sequence number (0 when the reliable sublayer is off).
        seq: u64,
    },
    /// A message was delivered to its destination.
    Deliver {
        /// Source process.
        src: ProcessId,
        /// Link sequence number (0 when the reliable sublayer is off).
        seq: u64,
    },
    /// The reliable sublayer retransmitted an unacked message.
    Retransmit {
        /// Destination process.
        dst: ProcessId,
        /// Link sequence number.
        seq: u64,
    },
    /// The process crashed (fault injection).
    Crash,
    /// The process restarted after a crash.
    Restart,
    /// The wire-side delta-coded dependency tag decoded to a different set
    /// than the typed tag carried in the same envelope; the link codec was
    /// forced to Full resync.
    TagDecodeMismatch {
        /// Source process of the mis-decoded message.
        src: ProcessId,
        /// Link sequence number.
        seq: u64,
    },
    /// The speculation controller folded in one observed resolution
    /// (adaptive speculation control, DESIGN.md §9). EWMAs are Q16 fixed
    /// point; the per-pid event order is this process's observation order,
    /// so filtering a trace by pid yields the exact EWMA trajectory.
    SpecObserve {
        /// The resolved assumption.
        aid: AidId,
        /// True for a deny (observed through rollback attribution), false
        /// for an affirm (observed through interval finalization).
        denied: bool,
        /// Post-observation per-AID deny-rate EWMA (Q16).
        aid_ewma: u32,
        /// Post-observation process-aggregate deny-rate EWMA (Q16).
        process_ewma: u32,
    },
    /// The adaptive policy flipped regime for one key.
    SpecThrottle {
        /// The AID whose per-AID EWMA flipped, or `None` for the
        /// process-aggregate EWMA.
        aid: Option<AidId>,
        /// True entering the pessimistic regime, false resuming optimism.
        on: bool,
        /// The EWMA value at the flip (Q16).
        ewma: u32,
    },
    /// A `guess` waited under speculation control before proceeding:
    /// either the guessed AID (or the process) was throttled into the
    /// pessimistic regime, or the unaffirmed guess chain hit `max_depth`.
    SpecWait {
        /// The assumption being guessed.
        aid: AidId,
        /// True when the wait was for chain depth rather than throttling.
        depth_limited: bool,
    },
    /// Doomed speculative work was cancelled before it could run: the AID
    /// is known denied, so the interval that would have depended on it was
    /// never opened (early doomed-interval cancellation).
    CancelDoomed {
        /// The known-denied assumption that doomed the work.
        aid: AidId,
        /// True when a stale tagged message was discarded before its
        /// implicit receive interval opened; false when an explicit
        /// `guess` was short-circuited straight to `false`.
        message: bool,
    },
}

/// One trace record: where, when (twice) and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process the event belongs to.
    pub pid: ProcessId,
    /// Deterministic virtual-time stamp.
    pub virt: VirtualTime,
    /// Wall-clock nanoseconds since the collector's epoch.
    pub wall_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
}

/// Shared, ring-buffered event sink. Always constructed (both runtimes and
/// every HOPElib hold an `Arc` to one) but off by default: [`record`]
/// returns after a single relaxed atomic load until [`enable`] is called.
///
/// [`record`]: TraceCollector::record
/// [`enable`]: TraceCollector::enable
pub struct TraceCollector {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
    epoch: Instant,
}

impl fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCollector")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A disabled collector with the default capacity.
    pub fn new() -> Self {
        TraceCollector {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: DEFAULT_TRACE_CAPACITY,
            }),
            epoch: Instant::now(),
        }
    }

    /// Clears the ring, sets its capacity and turns collection on.
    pub fn enable(&self, capacity: usize) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.buf.clear();
        ring.capacity = capacity.max(1);
        self.dropped.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Release);
    }

    /// [`enable`](TraceCollector::enable) with
    /// [`DEFAULT_TRACE_CAPACITY`].
    pub fn enable_default(&self) {
        self.enable(DEFAULT_TRACE_CAPACITY);
    }

    /// Turns collection off (already-collected events remain readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether [`record`](TraceCollector::record) currently stores events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Appends an event if tracing is enabled; otherwise a single relaxed
    /// atomic load. The wall stamp is taken here, relative to the
    /// collector's construction.
    #[inline]
    pub fn record(&self, pid: ProcessId, virt: VirtualTime, kind: TraceEventKind) {
        if !self.is_enabled() {
            return;
        }
        self.record_slow(pid, virt, kind);
    }

    #[cold]
    fn record_slow(&self, pid: ProcessId, virt: VirtualTime, kind: TraceEventKind) {
        let wall_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(TraceEvent {
            pid,
            virt,
            wall_ns,
            kind,
        });
    }

    /// Copies the collected events in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the collected events in arrival order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .buf
            .drain(..)
            .collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").buf.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Who a rollback is causally charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlameKey {
    /// The AID whose `deny` started the cascade that reached this process.
    Aid(AidId),
    /// A crash of this process (no deny involved).
    Crash(ProcessId),
}

impl fmt::Display for BlameKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlameKey::Aid(aid) => write!(f, "deny({aid})"),
            BlameKey::Crash(pid) => write!(f, "crash({pid})"),
        }
    }
}

/// Wasted-work totals charged to one [`BlameKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WastedWork {
    /// Speculative intervals discarded.
    pub intervals_discarded: u64,
    /// Replay-log operations discarded (work that must be redone).
    pub ops_discarded: u64,
    /// Sends among the discarded operations — messages whose downstream
    /// effects are invalidated by the rollback.
    pub messages_invalidated: u64,
    /// Re-executions triggered (each rollback restarts the body once, so
    /// this is the re-execution depth charged to the cause).
    pub reexecutions: u64,
}

impl WastedWork {
    /// Component-wise sum.
    pub fn add(&mut self, other: &WastedWork) {
        self.intervals_discarded += other.intervals_discarded;
        self.ops_discarded += other.ops_discarded;
        self.messages_invalidated += other.messages_invalidated;
        self.reexecutions += other.reexecutions;
    }

    /// True when every total is zero.
    pub fn is_zero(&self) -> bool {
        *self == WastedWork::default()
    }
}

impl fmt::Display for WastedWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "intervals={} ops={} msgs_invalidated={} reexecutions={}",
            self.intervals_discarded,
            self.ops_discarded,
            self.messages_invalidated,
            self.reexecutions
        )
    }
}

/// Per-cause wasted-work totals for one execution (one env). Deterministic
/// iteration order (`BTreeMap`) so two runs of the same seeded scenario
/// compare bit-identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RollbackAttribution {
    /// Totals keyed by the rollback cause.
    pub by_cause: BTreeMap<BlameKey, WastedWork>,
}

impl RollbackAttribution {
    /// An empty attribution table.
    pub fn new() -> Self {
        RollbackAttribution::default()
    }

    /// Adds `work` to the totals charged to `key`.
    pub fn charge(&mut self, key: BlameKey, work: WastedWork) {
        self.by_cause.entry(key).or_default().add(&work);
    }

    /// Merges another table into this one (component-wise sums).
    pub fn merge(&mut self, other: &RollbackAttribution) {
        for (key, work) in &other.by_cause {
            self.by_cause.entry(*key).or_default().add(work);
        }
    }

    /// Sum over every cause.
    pub fn total(&self) -> WastedWork {
        let mut total = WastedWork::default();
        for work in self.by_cause.values() {
            total.add(work);
        }
        total
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.by_cause.is_empty()
    }
}

impl fmt::Display for RollbackAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.by_cause.is_empty() {
            return write!(f, "attribution: (no rollbacks)");
        }
        write!(f, "attribution:")?;
        for (key, work) in &self.by_cause {
            write!(f, "\n  {key}: {work}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    fn aid(n: u64) -> AidId {
        AidId::from_raw(pid(n))
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = TraceCollector::new();
        c.record(pid(0), VirtualTime::ZERO, TraceEventKind::Reexecution);
        assert!(c.is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn enabled_collector_keeps_order_and_drops_oldest() {
        let c = TraceCollector::new();
        c.enable(2);
        for n in 0..3u64 {
            c.record(
                pid(n),
                VirtualTime::from_nanos(n),
                TraceEventKind::Affirm { aid: aid(n) },
            );
        }
        let events = c.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].pid, pid(1));
        assert_eq!(events[1].pid, pid(2));
        assert_eq!(c.dropped(), 1);
    }

    #[test]
    fn drain_empties_the_ring() {
        let c = TraceCollector::new();
        c.enable(8);
        c.record(pid(0), VirtualTime::ZERO, TraceEventKind::Crash);
        assert_eq!(c.drain().len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn attribution_charges_and_merges() {
        let mut a = RollbackAttribution::new();
        a.charge(
            BlameKey::Aid(aid(1)),
            WastedWork {
                intervals_discarded: 2,
                ops_discarded: 5,
                messages_invalidated: 1,
                reexecutions: 1,
            },
        );
        a.charge(
            BlameKey::Aid(aid(1)),
            WastedWork {
                intervals_discarded: 1,
                ops_discarded: 2,
                messages_invalidated: 0,
                reexecutions: 1,
            },
        );
        let mut b = RollbackAttribution::new();
        b.charge(
            BlameKey::Crash(pid(3)),
            WastedWork {
                intervals_discarded: 4,
                ops_discarded: 9,
                messages_invalidated: 2,
                reexecutions: 1,
            },
        );
        b.merge(&a);
        assert_eq!(b.by_cause.len(), 2);
        let total = b.total();
        assert_eq!(total.intervals_discarded, 7);
        assert_eq!(total.ops_discarded, 16);
        assert_eq!(total.messages_invalidated, 3);
        assert_eq!(total.reexecutions, 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn display_is_stable() {
        let mut a = RollbackAttribution::new();
        a.charge(BlameKey::Aid(aid(2)), WastedWork::default());
        let text = a.to_string();
        assert!(text.contains("deny("));
        assert!(RollbackAttribution::new()
            .to_string()
            .contains("no rollbacks"));
    }
}

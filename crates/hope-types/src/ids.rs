//! Identifiers for processes, assumption identifiers and intervals.

use std::fmt;

/// Identity of a process (actor) registered with a HOPE runtime.
///
/// Both *user processes* and *AID processes* (the paper's `P_X`) are
/// runtime processes and share this identifier space, mirroring the paper's
/// PVM prototype in which assumption identifiers were implemented as
/// ordinary PVM tasks.
///
/// # Examples
///
/// ```
/// use hope_types::ProcessId;
/// let p = ProcessId::from_raw(3);
/// assert_eq!(p.as_raw(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u64);

impl ProcessId {
    /// Builds a process id from its raw numeric value.
    pub const fn from_raw(raw: u64) -> Self {
        ProcessId(raw)
    }

    /// Returns the raw numeric value of this id.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An **assumption identifier** — the paper's `AID x`.
///
/// An AID names one optimistic assumption. In this implementation, as in the
/// paper's prototype, each AID is realized by a dedicated *AID process*
/// whose [`ProcessId`] doubles as the assumption's identity: messages about
/// the assumption are addressed to that process.
///
/// # Examples
///
/// ```
/// use hope_types::{AidId, ProcessId};
/// let aid = AidId::from_raw(ProcessId::from_raw(12));
/// assert_eq!(aid.process(), ProcessId::from_raw(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AidId(ProcessId);

impl AidId {
    /// Wraps the [`ProcessId`] of an AID process as an assumption identifier.
    pub const fn from_raw(pid: ProcessId) -> Self {
        AidId(pid)
    }

    /// The AID process that tracks this assumption.
    pub const fn process(self) -> ProcessId {
        self.0
    }
}

impl fmt::Display for AidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0.as_raw())
    }
}

impl From<AidId> for ProcessId {
    fn from(aid: AidId) -> ProcessId {
        aid.process()
    }
}

/// Identity of one **interval** in a user process's execution history.
///
/// An interval is the subsequence of a process's history between two
/// executions of the `guess` primitive and is the smallest granularity of
/// rollback. Interval ids order naturally: within one process, a larger
/// `index` means a later (more speculative) interval.
///
/// # Examples
///
/// ```
/// use hope_types::{IntervalId, ProcessId};
/// let p = ProcessId::from_raw(1);
/// let a = IntervalId::new(p, 0);
/// let b = IntervalId::new(p, 1);
/// assert!(a < b);
/// assert_eq!(b.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId {
    process: ProcessId,
    index: u32,
}

impl IntervalId {
    /// Builds the id of interval number `index` of process `process`.
    pub const fn new(process: ProcessId, index: u32) -> Self {
        IntervalId { process, index }
    }

    /// The user process this interval belongs to.
    pub const fn process(self) -> ProcessId {
        self.process
    }

    /// Position of this interval within its process's history (0-based).
    pub const fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.process, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::from_raw(42);
        assert_eq!(p.as_raw(), 42);
        assert_eq!(format!("{p}"), "P42");
    }

    #[test]
    fn aid_id_wraps_process() {
        let p = ProcessId::from_raw(7);
        let a = AidId::from_raw(p);
        assert_eq!(a.process(), p);
        assert_eq!(ProcessId::from(a), p);
        assert_eq!(format!("{a}"), "X7");
    }

    #[test]
    fn interval_ordering_within_process() {
        let p = ProcessId::from_raw(1);
        assert!(IntervalId::new(p, 0) < IntervalId::new(p, 5));
        assert_eq!(IntervalId::new(p, 5).index(), 5);
        assert_eq!(IntervalId::new(p, 5).process(), p);
    }

    #[test]
    fn interval_ordering_across_processes_is_by_process_first() {
        let a = IntervalId::new(ProcessId::from_raw(1), 9);
        let b = IntervalId::new(ProcessId::from_raw(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", IntervalId::new(ProcessId::from_raw(0), 0)).is_empty());
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProcessId>();
        assert_send_sync::<AidId>();
        assert_send_sync::<IntervalId>();
    }
}

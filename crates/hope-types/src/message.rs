//! Message formats: the HOPE protocol messages of the paper's Table 1,
//! tagged user messages, and the runtime envelope that carries both.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

use crate::{AidId, IdoSet, IntervalId, ProcessId, VirtualTime};

/// The dependency tag piggy-backed on every user message.
///
/// "A speculative process tags the messages it sends with the set of AIDs
/// that it depends on. Receivers implicitly apply guess primitives to each
/// of the AIDs in the message's tag." (§3)
pub type DepTag = IdoSet;

/// One of the five HOPE protocol messages (paper, Table 1).
///
/// | Variant    | From | To   | Meaning                                    |
/// |------------|------|------|--------------------------------------------|
/// | `Guess`    | User | AID  | sender guesses the AID is true             |
/// | `Affirm`   | User | AID  | sender affirms the AID, subject to `ido`   |
/// | `Deny`     | User | AID  | sender denies the AID unconditionally      |
/// | `Replace`  | AID  | User | replace the sending AID with `ido` in the  |
/// |            |      |      | target interval's IDO set                  |
/// | `Rollback` | AID  | User | roll back the target interval              |
///
/// # Examples
///
/// ```
/// use hope_types::{HopeMessage, IntervalId, ProcessId};
/// let iid = IntervalId::new(ProcessId::from_raw(1), 0);
/// let m = HopeMessage::Guess { iid };
/// assert_eq!(m.interval(), iid);
/// assert_eq!(m.kind(), "Guess");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopeMessage {
    /// `<Guess, iid>` — the interval `iid` guesses that the destination AID
    /// is true and asks to be notified of its terminal state.
    Guess {
        /// The guessing interval, to be recorded in the AID's `DOM` set.
        iid: IntervalId,
    },
    /// `<Affirm, iid, IDO>` — assert the destination AID's assumption is
    /// true, subject to every AID in `ido` also being affirmed. An empty
    /// `ido` is a *definite* (unconditional) affirm.
    Affirm {
        /// The affirming interval (`None` when sent by `finalize`, whose
        /// affirms are definite and no longer tied to a live interval).
        iid: Option<IntervalId>,
        /// The affirming interval's IDO set at the time of the affirm.
        ido: IdoSet,
    },
    /// `<Deny, iid>` — assert the destination AID's assumption is false.
    /// Denies are always unconditional; speculative denies are buffered in
    /// `IHD` until the denying interval is definite (paper, footnote 1).
    Deny {
        /// The denying interval (`None` when sent by `finalize`).
        iid: Option<IntervalId>,
    },
    /// `<Replace, iid, IDO>` — replace the sending AID with `ido` in
    /// interval `iid`'s IDO set. An empty `ido` means the sending AID has
    /// reached state `True` and the dependency simply disappears.
    Replace {
        /// The interval whose IDO set must be updated.
        iid: IntervalId,
        /// The replacement set (the AID's `A_IDO`, or empty on `True`).
        ido: IdoSet,
    },
    /// `<Retain>` — reference-counting extension (paper §5: "Reference
    /// counting can garbage collect old AID processes"): the sender holds
    /// an additional reference to the destination AID.
    Retain,
    /// `<Release>` — the sender drops a reference; an AID in a terminal
    /// state with no remaining references stops its process.
    Release,
    /// `<Rollback, iid>` — roll back interval `iid` and every subsequent
    /// interval of its process.
    Rollback {
        /// The first interval to discard.
        iid: IntervalId,
        /// The denied assumption that triggered the rollback, when known.
        /// Lets the receiving Control decide whether the boundary `guess`
        /// should return `false` (its own assumption died) or be re-issued
        /// (a transitively acquired dependency died) — see
        /// `GuessRollbackPolicy` in `hope-core`.
        cause: Option<AidId>,
    },
}

impl HopeMessage {
    /// The interval this message concerns: the target interval for
    /// `Replace`/`Rollback`, the sending interval for `Guess`, and the
    /// sending interval (or a synthetic definite id) for `Affirm`/`Deny`.
    pub fn interval(&self) -> IntervalId {
        match self {
            HopeMessage::Guess { iid }
            | HopeMessage::Replace { iid, .. }
            | HopeMessage::Rollback { iid, .. } => *iid,
            HopeMessage::Affirm { iid, .. } | HopeMessage::Deny { iid } => {
                iid.unwrap_or(IntervalId::new(ProcessId::from_raw(u64::MAX), 0))
            }
            HopeMessage::Retain | HopeMessage::Release => {
                IntervalId::new(ProcessId::from_raw(u64::MAX), 0)
            }
        }
    }

    /// Short name of the message type, matching the paper's Table 1.
    pub fn kind(&self) -> &'static str {
        match self {
            HopeMessage::Guess { .. } => "Guess",
            HopeMessage::Affirm { .. } => "Affirm",
            HopeMessage::Deny { .. } => "Deny",
            HopeMessage::Replace { .. } => "Replace",
            HopeMessage::Retain => "Retain",
            HopeMessage::Release => "Release",
            HopeMessage::Rollback { .. } => "Rollback",
        }
    }
}

/// Wire-format tags for [`HopeMessage::encode`].
mod wire {
    pub const GUESS: u8 = 1;
    pub const AFFIRM: u8 = 2;
    pub const DENY: u8 = 3;
    pub const REPLACE: u8 = 4;
    pub const RETAIN: u8 = 5;
    pub const RELEASE: u8 = 6;
    pub const ROLLBACK: u8 = 7;
}

/// Reads one little-endian `u64`, advancing the cursor.
fn read_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let bytes = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Reads one little-endian `u32`, advancing the cursor.
fn read_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u8(buf: &[u8], at: &mut usize) -> Option<u8> {
    let b = *buf.get(*at)?;
    *at += 1;
    Some(b)
}

fn put_iid(buf: &mut BytesMut, iid: IntervalId) {
    buf.put_u64_le(iid.process().as_raw());
    buf.put_u32_le(iid.index());
}

fn read_iid(buf: &[u8], at: &mut usize) -> Option<IntervalId> {
    let process = ProcessId::from_raw(read_u64(buf, at)?);
    let index = read_u32(buf, at)?;
    Some(IntervalId::new(process, index))
}

fn put_opt_iid(buf: &mut BytesMut, iid: Option<IntervalId>) {
    match iid {
        Some(i) => {
            buf.put_u8(1);
            put_iid(buf, i);
        }
        None => buf.put_u8(0),
    }
}

fn read_opt_iid(buf: &[u8], at: &mut usize) -> Option<Option<IntervalId>> {
    match read_u8(buf, at)? {
        0 => Some(None),
        1 => Some(Some(read_iid(buf, at)?)),
        _ => None,
    }
}

fn put_ido(buf: &mut BytesMut, ido: &IdoSet) {
    buf.put_u32_le(ido.len() as u32);
    for aid in ido.iter() {
        buf.put_u64_le(aid.process().as_raw());
    }
}

fn read_ido(buf: &[u8], at: &mut usize) -> Option<IdoSet> {
    let n = read_u32(buf, at)?;
    let mut ido = IdoSet::new();
    for _ in 0..n {
        ido.insert(AidId::from_raw(ProcessId::from_raw(read_u64(buf, at)?)));
    }
    Some(ido)
}

impl HopeMessage {
    /// Serializes this message into a compact little-endian wire form.
    /// Used by the reliable-delivery layer's tests and by external
    /// transports; in-memory runtimes pass messages by value.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            HopeMessage::Guess { iid } => {
                buf.put_u8(wire::GUESS);
                put_iid(&mut buf, *iid);
            }
            HopeMessage::Affirm { iid, ido } => {
                buf.put_u8(wire::AFFIRM);
                put_opt_iid(&mut buf, *iid);
                put_ido(&mut buf, ido);
            }
            HopeMessage::Deny { iid } => {
                buf.put_u8(wire::DENY);
                put_opt_iid(&mut buf, *iid);
            }
            HopeMessage::Replace { iid, ido } => {
                buf.put_u8(wire::REPLACE);
                put_iid(&mut buf, *iid);
                put_ido(&mut buf, ido);
            }
            HopeMessage::Retain => buf.put_u8(wire::RETAIN),
            HopeMessage::Release => buf.put_u8(wire::RELEASE),
            HopeMessage::Rollback { iid, cause } => {
                buf.put_u8(wire::ROLLBACK);
                put_iid(&mut buf, *iid);
                match cause {
                    Some(c) => {
                        buf.put_u8(1);
                        buf.put_u64_le(c.process().as_raw());
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        buf.freeze()
    }

    /// Parses a message produced by [`HopeMessage::encode`]. Returns
    /// `None` on truncated or malformed input (trailing bytes are also
    /// rejected — a reliable link never legitimately pads frames).
    pub fn decode(buf: &[u8]) -> Option<HopeMessage> {
        let mut at = 0usize;
        let msg = match read_u8(buf, &mut at)? {
            wire::GUESS => HopeMessage::Guess {
                iid: read_iid(buf, &mut at)?,
            },
            wire::AFFIRM => HopeMessage::Affirm {
                iid: read_opt_iid(buf, &mut at)?,
                ido: read_ido(buf, &mut at)?,
            },
            wire::DENY => HopeMessage::Deny {
                iid: read_opt_iid(buf, &mut at)?,
            },
            wire::REPLACE => HopeMessage::Replace {
                iid: read_iid(buf, &mut at)?,
                ido: read_ido(buf, &mut at)?,
            },
            wire::RETAIN => HopeMessage::Retain,
            wire::RELEASE => HopeMessage::Release,
            wire::ROLLBACK => {
                let iid = read_iid(buf, &mut at)?;
                let cause = match read_u8(buf, &mut at)? {
                    0 => None,
                    1 => Some(AidId::from_raw(ProcessId::from_raw(read_u64(
                        buf, &mut at,
                    )?))),
                    _ => return None,
                };
                HopeMessage::Rollback { iid, cause }
            }
            _ => return None,
        };
        if at == buf.len() {
            Some(msg)
        } else {
            None
        }
    }
}

impl fmt::Display for HopeMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopeMessage::Guess { iid } => write!(f, "<Guess, {iid}>"),
            HopeMessage::Affirm { iid: Some(i), ido } => write!(f, "<Affirm, {i}, {ido}>"),
            HopeMessage::Affirm { iid: None, ido } => write!(f, "<Affirm, definite, {ido}>"),
            HopeMessage::Deny { iid: Some(i) } => write!(f, "<Deny, {i}>"),
            HopeMessage::Deny { iid: None } => write!(f, "<Deny, definite>"),
            HopeMessage::Replace { iid, ido } => write!(f, "<Replace, {iid}, {ido}>"),
            HopeMessage::Retain => write!(f, "<Retain>"),
            HopeMessage::Release => write!(f, "<Release>"),
            HopeMessage::Rollback {
                iid,
                cause: Some(c),
            } => {
                write!(f, "<Rollback, {iid}, cause={c}>")
            }
            HopeMessage::Rollback { iid, cause: None } => write!(f, "<Rollback, {iid}>"),
        }
    }
}

/// An application-level message exchanged between user processes.
///
/// The `tag` carries the sender's dependency set; the receiving HOPElib
/// implicitly guesses every AID in it before handing `data` to user code.
/// `channel` is an application-chosen demultiplexing key (e.g. the RPC
/// layer uses it to separate requests from replies).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hope_types::UserMessage;
/// let m = UserMessage::new(0, Bytes::from_static(b"hello"));
/// assert!(m.tag.is_empty());
/// assert_eq!(&m.data[..], b"hello");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMessage {
    /// Application demultiplexing channel.
    pub channel: u32,
    /// Opaque payload.
    pub data: Bytes,
    /// AIDs the sender depended on when sending (implicit-guess tag).
    pub tag: DepTag,
}

impl UserMessage {
    /// Builds an untagged user message on `channel`.
    pub fn new(channel: u32, data: Bytes) -> Self {
        UserMessage {
            channel,
            data,
            tag: DepTag::new(),
        }
    }

    /// Builds a tagged user message; normally the HOPElib attaches the tag.
    pub fn tagged(channel: u32, data: Bytes, tag: DepTag) -> Self {
        UserMessage { channel, data, tag }
    }
}

/// What an [`Envelope`] carries: either an application message or a HOPE
/// protocol message. The runtime delivers `User` payloads to the process's
/// receive queue and `Hope` payloads to the process's HOPElib `Control`
/// function, mirroring the interception of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// An application message for user code.
    User(UserMessage),
    /// A HOPE protocol message for the HOPElib / AID state machine.
    Hope(HopeMessage),
    /// A link-layer acknowledgement for the reliable-delivery sublayer:
    /// confirms receipt of the envelope carrying sequence number `seq`
    /// on the acknowledging link. Consumed by the runtime's link state,
    /// never delivered to a process.
    Ack {
        /// The acknowledged per-link sequence number.
        seq: u64,
    },
}

impl Payload {
    /// True if this payload is a HOPE protocol message.
    pub fn is_hope(&self) -> bool {
        matches!(self, Payload::Hope(_))
    }
}

/// Wire-format tags for [`Payload::encode`].
mod payload_wire {
    pub const USER: u8 = 16;
    pub const HOPE: u8 = 17;
    pub const ACK: u8 = 18;
}

fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn read_bytes(buf: &[u8], at: &mut usize) -> Option<Bytes> {
    let n = read_u32(buf, at)? as usize;
    let bytes = buf.get(*at..*at + n)?;
    *at += n;
    Some(Bytes::copy_from_slice(bytes))
}

fn put_payload(buf: &mut BytesMut, payload: &Payload) {
    match payload {
        Payload::User(m) => {
            buf.put_u8(payload_wire::USER);
            buf.put_u32_le(m.channel);
            put_bytes(buf, &m.data);
            put_ido(buf, &m.tag);
        }
        Payload::Hope(m) => {
            buf.put_u8(payload_wire::HOPE);
            // Length-prefixed so the nested decoder sees an exact frame
            // (HopeMessage::decode rejects trailing bytes).
            put_bytes(buf, &m.encode());
        }
        Payload::Ack { seq } => {
            buf.put_u8(payload_wire::ACK);
            buf.put_u64_le(*seq);
        }
    }
}

fn read_payload(buf: &[u8], at: &mut usize) -> Option<Payload> {
    match read_u8(buf, at)? {
        payload_wire::USER => {
            let channel = read_u32(buf, at)?;
            let data = read_bytes(buf, at)?;
            let tag = read_ido(buf, at)?;
            Some(Payload::User(UserMessage { channel, data, tag }))
        }
        payload_wire::HOPE => {
            let frame = read_bytes(buf, at)?;
            Some(Payload::Hope(HopeMessage::decode(&frame)?))
        }
        payload_wire::ACK => Some(Payload::Ack {
            seq: read_u64(buf, at)?,
        }),
        _ => None,
    }
}

impl Payload {
    /// Serializes this payload in the same little-endian wire form as
    /// [`HopeMessage::encode`]; payload tags live in a disjoint range so a
    /// frame's first byte identifies the layer it belongs to.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        put_payload(&mut buf, self);
        buf.freeze()
    }

    /// Parses a payload produced by [`Payload::encode`]. Returns `None` on
    /// truncated, malformed, or padded input.
    pub fn decode(buf: &[u8]) -> Option<Payload> {
        let mut at = 0usize;
        let payload = read_payload(buf, &mut at)?;
        if at == buf.len() {
            Some(payload)
        } else {
            None
        }
    }
}

/// A message in flight between two runtime processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// Virtual instant at which the message was sent.
    pub sent_at: VirtualTime,
    /// Per-sender sequence number (FIFO per link).
    pub seq: u64,
    /// The carried message.
    pub payload: Payload,
}

impl Envelope {
    /// Serializes the full envelope — link header (`src`, `dst`,
    /// `sent_at`, `seq`) followed by the payload — for transports that
    /// move frames between address spaces.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64_le(self.src.as_raw());
        buf.put_u64_le(self.dst.as_raw());
        buf.put_u64_le(self.sent_at.as_nanos());
        buf.put_u64_le(self.seq);
        put_payload(&mut buf, &self.payload);
        buf.freeze()
    }

    /// Parses an envelope produced by [`Envelope::encode`]. Returns `None`
    /// on truncated or malformed input; trailing bytes are rejected.
    pub fn decode(buf: &[u8]) -> Option<Envelope> {
        let mut at = 0usize;
        let src = ProcessId::from_raw(read_u64(buf, &mut at)?);
        let dst = ProcessId::from_raw(read_u64(buf, &mut at)?);
        let sent_at = VirtualTime::from_nanos(read_u64(buf, &mut at)?);
        let seq = read_u64(buf, &mut at)?;
        let payload = read_payload(buf, &mut at)?;
        if at == buf.len() {
            Some(Envelope {
                src,
                dst,
                sent_at,
                seq,
                payload,
            })
        } else {
            None
        }
    }
}

/// Helper for building the synthetic interval id used by definite
/// affirms/denies in traces.
pub fn definite_interval() -> IntervalId {
    IntervalId::new(ProcessId::from_raw(u64::MAX), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iid(p: u64, i: u32) -> IntervalId {
        IntervalId::new(ProcessId::from_raw(p), i)
    }

    fn aid(n: u64) -> AidId {
        AidId::from_raw(ProcessId::from_raw(n))
    }

    #[test]
    fn kind_matches_table_1() {
        assert_eq!(HopeMessage::Guess { iid: iid(1, 0) }.kind(), "Guess");
        assert_eq!(
            HopeMessage::Affirm {
                iid: Some(iid(1, 0)),
                ido: IdoSet::new()
            }
            .kind(),
            "Affirm"
        );
        assert_eq!(HopeMessage::Deny { iid: None }.kind(), "Deny");
        assert_eq!(
            HopeMessage::Replace {
                iid: iid(1, 0),
                ido: IdoSet::new()
            }
            .kind(),
            "Replace"
        );
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 0),
                cause: None
            }
            .kind(),
            "Rollback"
        );
    }

    #[test]
    fn interval_extraction() {
        let m = HopeMessage::Replace {
            iid: iid(2, 3),
            ido: IdoSet::new(),
        };
        assert_eq!(m.interval(), iid(2, 3));
        let definite = HopeMessage::Deny { iid: None };
        assert_eq!(definite.interval(), definite_interval());
    }

    #[test]
    fn display_forms() {
        let m = HopeMessage::Affirm {
            iid: Some(iid(1, 2)),
            ido: [aid(5)].into_iter().collect(),
        };
        assert_eq!(m.to_string(), "<Affirm, P1#2, {X5}>");
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 2),
                cause: None
            }
            .to_string(),
            "<Rollback, P1#2>"
        );
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 2),
                cause: Some(aid(3))
            }
            .to_string(),
            "<Rollback, P1#2, cause=X3>"
        );
    }

    #[test]
    fn user_message_builders() {
        let plain = UserMessage::new(7, Bytes::from_static(b"x"));
        assert_eq!(plain.channel, 7);
        assert!(plain.tag.is_empty());
        let tag: DepTag = [aid(1)].into_iter().collect();
        let tagged = UserMessage::tagged(7, Bytes::new(), tag.clone());
        assert_eq!(tagged.tag, tag);
    }

    #[test]
    fn payload_discrimination() {
        assert!(Payload::Hope(HopeMessage::Deny { iid: None }).is_hope());
        assert!(!Payload::User(UserMessage::new(0, Bytes::new())).is_hope());
    }

    #[test]
    fn hope_message_wire_roundtrip() {
        let samples = [
            HopeMessage::Guess { iid: iid(1, 0) },
            HopeMessage::Affirm {
                iid: Some(iid(4, 9)),
                ido: [aid(1), aid(2)].into_iter().collect(),
            },
            HopeMessage::Affirm {
                iid: None,
                ido: IdoSet::new(),
            },
            HopeMessage::Deny {
                iid: Some(iid(7, 3)),
            },
            HopeMessage::Deny { iid: None },
            HopeMessage::Replace {
                iid: iid(4, 9),
                ido: [aid(1), aid(2), aid(3)].into_iter().collect(),
            },
            HopeMessage::Retain,
            HopeMessage::Release,
            HopeMessage::Rollback {
                iid: iid(2, 1),
                cause: Some(aid(8)),
            },
            HopeMessage::Rollback {
                iid: iid(2, 1),
                cause: None,
            },
        ];
        for m in samples {
            let encoded = m.encode();
            let back = HopeMessage::decode(&encoded).expect("well-formed frame decodes");
            assert_eq!(m, back, "round trip of {m}");
        }
    }

    #[test]
    fn wire_decode_rejects_malformed_frames() {
        assert_eq!(HopeMessage::decode(&[]), None, "empty frame");
        assert_eq!(HopeMessage::decode(&[0xff]), None, "unknown tag");
        let good = HopeMessage::Guess { iid: iid(1, 2) }.encode();
        assert_eq!(
            HopeMessage::decode(&good[..good.len() - 1]),
            None,
            "truncated"
        );
        let mut padded = good.to_vec();
        padded.push(0);
        assert_eq!(HopeMessage::decode(&padded), None, "trailing bytes");
    }
}

//! Message formats: the HOPE protocol messages of the paper's Table 1,
//! tagged user messages, and the runtime envelope that carries both.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{AidId, IdoSet, IntervalId, ProcessId, VirtualTime};

/// The dependency tag piggy-backed on every user message.
///
/// "A speculative process tags the messages it sends with the set of AIDs
/// that it depends on. Receivers implicitly apply guess primitives to each
/// of the AIDs in the message's tag." (§3)
pub type DepTag = IdoSet;

/// One of the five HOPE protocol messages (paper, Table 1).
///
/// | Variant    | From | To   | Meaning                                    |
/// |------------|------|------|--------------------------------------------|
/// | `Guess`    | User | AID  | sender guesses the AID is true             |
/// | `Affirm`   | User | AID  | sender affirms the AID, subject to `ido`   |
/// | `Deny`     | User | AID  | sender denies the AID unconditionally      |
/// | `Replace`  | AID  | User | replace the sending AID with `ido` in the  |
/// |            |      |      | target interval's IDO set                  |
/// | `Rollback` | AID  | User | roll back the target interval              |
///
/// # Examples
///
/// ```
/// use hope_types::{HopeMessage, IntervalId, ProcessId};
/// let iid = IntervalId::new(ProcessId::from_raw(1), 0);
/// let m = HopeMessage::Guess { iid };
/// assert_eq!(m.interval(), iid);
/// assert_eq!(m.kind(), "Guess");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HopeMessage {
    /// `<Guess, iid>` — the interval `iid` guesses that the destination AID
    /// is true and asks to be notified of its terminal state.
    Guess {
        /// The guessing interval, to be recorded in the AID's `DOM` set.
        iid: IntervalId,
    },
    /// `<Affirm, iid, IDO>` — assert the destination AID's assumption is
    /// true, subject to every AID in `ido` also being affirmed. An empty
    /// `ido` is a *definite* (unconditional) affirm.
    Affirm {
        /// The affirming interval (`None` when sent by `finalize`, whose
        /// affirms are definite and no longer tied to a live interval).
        iid: Option<IntervalId>,
        /// The affirming interval's IDO set at the time of the affirm.
        ido: IdoSet,
    },
    /// `<Deny, iid>` — assert the destination AID's assumption is false.
    /// Denies are always unconditional; speculative denies are buffered in
    /// `IHD` until the denying interval is definite (paper, footnote 1).
    Deny {
        /// The denying interval (`None` when sent by `finalize`).
        iid: Option<IntervalId>,
    },
    /// `<Replace, iid, IDO>` — replace the sending AID with `ido` in
    /// interval `iid`'s IDO set. An empty `ido` means the sending AID has
    /// reached state `True` and the dependency simply disappears.
    Replace {
        /// The interval whose IDO set must be updated.
        iid: IntervalId,
        /// The replacement set (the AID's `A_IDO`, or empty on `True`).
        ido: IdoSet,
    },
    /// `<Retain>` — reference-counting extension (paper §5: "Reference
    /// counting can garbage collect old AID processes"): the sender holds
    /// an additional reference to the destination AID.
    Retain,
    /// `<Release>` — the sender drops a reference; an AID in a terminal
    /// state with no remaining references stops its process.
    Release,
    /// `<Rollback, iid>` — roll back interval `iid` and every subsequent
    /// interval of its process.
    Rollback {
        /// The first interval to discard.
        iid: IntervalId,
        /// The denied assumption that triggered the rollback, when known.
        /// Lets the receiving Control decide whether the boundary `guess`
        /// should return `false` (its own assumption died) or be re-issued
        /// (a transitively acquired dependency died) — see
        /// `GuessRollbackPolicy` in `hope-core`.
        cause: Option<AidId>,
    },
}

impl HopeMessage {
    /// The interval this message concerns: the target interval for
    /// `Replace`/`Rollback`, the sending interval for `Guess`, and the
    /// sending interval (or a synthetic definite id) for `Affirm`/`Deny`.
    pub fn interval(&self) -> IntervalId {
        match self {
            HopeMessage::Guess { iid }
            | HopeMessage::Replace { iid, .. }
            | HopeMessage::Rollback { iid, .. } => *iid,
            HopeMessage::Affirm { iid, .. } | HopeMessage::Deny { iid } => {
                iid.unwrap_or(IntervalId::new(ProcessId::from_raw(u64::MAX), 0))
            }
            HopeMessage::Retain | HopeMessage::Release => {
                IntervalId::new(ProcessId::from_raw(u64::MAX), 0)
            }
        }
    }

    /// Short name of the message type, matching the paper's Table 1.
    pub fn kind(&self) -> &'static str {
        match self {
            HopeMessage::Guess { .. } => "Guess",
            HopeMessage::Affirm { .. } => "Affirm",
            HopeMessage::Deny { .. } => "Deny",
            HopeMessage::Replace { .. } => "Replace",
            HopeMessage::Retain => "Retain",
            HopeMessage::Release => "Release",
            HopeMessage::Rollback { .. } => "Rollback",
        }
    }
}

impl fmt::Display for HopeMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopeMessage::Guess { iid } => write!(f, "<Guess, {iid}>"),
            HopeMessage::Affirm { iid: Some(i), ido } => write!(f, "<Affirm, {i}, {ido}>"),
            HopeMessage::Affirm { iid: None, ido } => write!(f, "<Affirm, definite, {ido}>"),
            HopeMessage::Deny { iid: Some(i) } => write!(f, "<Deny, {i}>"),
            HopeMessage::Deny { iid: None } => write!(f, "<Deny, definite>"),
            HopeMessage::Replace { iid, ido } => write!(f, "<Replace, {iid}, {ido}>"),
            HopeMessage::Retain => write!(f, "<Retain>"),
            HopeMessage::Release => write!(f, "<Release>"),
            HopeMessage::Rollback { iid, cause: Some(c) } => {
                write!(f, "<Rollback, {iid}, cause={c}>")
            }
            HopeMessage::Rollback { iid, cause: None } => write!(f, "<Rollback, {iid}>"),
        }
    }
}

/// An application-level message exchanged between user processes.
///
/// The `tag` carries the sender's dependency set; the receiving HOPElib
/// implicitly guesses every AID in it before handing `data` to user code.
/// `channel` is an application-chosen demultiplexing key (e.g. the RPC
/// layer uses it to separate requests from replies).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hope_types::UserMessage;
/// let m = UserMessage::new(0, Bytes::from_static(b"hello"));
/// assert!(m.tag.is_empty());
/// assert_eq!(&m.data[..], b"hello");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMessage {
    /// Application demultiplexing channel.
    pub channel: u32,
    /// Opaque payload.
    pub data: Bytes,
    /// AIDs the sender depended on when sending (implicit-guess tag).
    pub tag: DepTag,
}

impl UserMessage {
    /// Builds an untagged user message on `channel`.
    pub fn new(channel: u32, data: Bytes) -> Self {
        UserMessage {
            channel,
            data,
            tag: DepTag::new(),
        }
    }

    /// Builds a tagged user message; normally the HOPElib attaches the tag.
    pub fn tagged(channel: u32, data: Bytes, tag: DepTag) -> Self {
        UserMessage { channel, data, tag }
    }
}

/// What an [`Envelope`] carries: either an application message or a HOPE
/// protocol message. The runtime delivers `User` payloads to the process's
/// receive queue and `Hope` payloads to the process's HOPElib `Control`
/// function, mirroring the interception of Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// An application message for user code.
    User(UserMessage),
    /// A HOPE protocol message for the HOPElib / AID state machine.
    Hope(HopeMessage),
}

impl Payload {
    /// True if this payload is a HOPE protocol message.
    pub fn is_hope(&self) -> bool {
        matches!(self, Payload::Hope(_))
    }
}

/// A message in flight between two runtime processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// Virtual instant at which the message was sent.
    pub sent_at: VirtualTime,
    /// Per-sender sequence number (FIFO per link).
    pub seq: u64,
    /// The carried message.
    pub payload: Payload,
}

/// Helper for building the synthetic interval id used by definite
/// affirms/denies in traces.
pub fn definite_interval() -> IntervalId {
    IntervalId::new(ProcessId::from_raw(u64::MAX), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iid(p: u64, i: u32) -> IntervalId {
        IntervalId::new(ProcessId::from_raw(p), i)
    }

    fn aid(n: u64) -> AidId {
        AidId::from_raw(ProcessId::from_raw(n))
    }

    #[test]
    fn kind_matches_table_1() {
        assert_eq!(HopeMessage::Guess { iid: iid(1, 0) }.kind(), "Guess");
        assert_eq!(
            HopeMessage::Affirm {
                iid: Some(iid(1, 0)),
                ido: IdoSet::new()
            }
            .kind(),
            "Affirm"
        );
        assert_eq!(HopeMessage::Deny { iid: None }.kind(), "Deny");
        assert_eq!(
            HopeMessage::Replace {
                iid: iid(1, 0),
                ido: IdoSet::new()
            }
            .kind(),
            "Replace"
        );
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 0),
                cause: None
            }
            .kind(),
            "Rollback"
        );
    }

    #[test]
    fn interval_extraction() {
        let m = HopeMessage::Replace {
            iid: iid(2, 3),
            ido: IdoSet::new(),
        };
        assert_eq!(m.interval(), iid(2, 3));
        let definite = HopeMessage::Deny { iid: None };
        assert_eq!(definite.interval(), definite_interval());
    }

    #[test]
    fn display_forms() {
        let m = HopeMessage::Affirm {
            iid: Some(iid(1, 2)),
            ido: [aid(5)].into_iter().collect(),
        };
        assert_eq!(m.to_string(), "<Affirm, P1#2, {X5}>");
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 2),
                cause: None
            }
            .to_string(),
            "<Rollback, P1#2>"
        );
        assert_eq!(
            HopeMessage::Rollback {
                iid: iid(1, 2),
                cause: Some(aid(3))
            }
            .to_string(),
            "<Rollback, P1#2, cause=X3>"
        );
    }

    #[test]
    fn user_message_builders() {
        let plain = UserMessage::new(7, Bytes::from_static(b"x"));
        assert_eq!(plain.channel, 7);
        assert!(plain.tag.is_empty());
        let tag: DepTag = [aid(1)].into_iter().collect();
        let tagged = UserMessage::tagged(7, Bytes::new(), tag.clone());
        assert_eq!(tagged.tag, tag);
    }

    #[test]
    fn payload_discrimination() {
        assert!(Payload::Hope(HopeMessage::Deny { iid: None }).is_hope());
        assert!(!Payload::User(UserMessage::new(0, Bytes::new())).is_hope());
    }

    #[test]
    fn hope_message_serde_roundtrip() {
        let m = HopeMessage::Replace {
            iid: iid(4, 9),
            ido: [aid(1), aid(2)].into_iter().collect(),
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: HopeMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

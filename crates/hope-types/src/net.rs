//! Network wire vocabulary: node identity, the stream-frame format, and
//! the node handshake protocol.
//!
//! The paper's prototype ran over PVM's daemons; this reproduction's real
//! transport (`hope-runtime::net`) runs over TCP sockets. A TCP stream is
//! a byte pipe, not a datagram service, so everything that crosses a
//! socket is wrapped in a **length-prefixed, CRC-guarded frame**:
//!
//! ```text
//! [magic u32][kind u8][len u32][crc32 u32][payload: len bytes]
//! ```
//!
//! All integers are little-endian. The CRC covers the kind byte and the
//! payload, so a corrupted kind is rejected even when the payload
//! survives. [`FrameReader`] reassembles frames incrementally from
//! arbitrary read boundaries (a `read()` may return half a header, three
//! frames and a trailing fragment — all legal), and rejects damage with
//! typed [`FrameError`]s instead of mis-parsing: a transport that sees
//! any `FrameError` must drop the connection, because a byte stream that
//! has lost framing cannot be resynchronized safely.
//!
//! Connections open with a **handshake**: the dialer sends a
//! [`NodeHello`] (node id, protocol version, feature bits) and the
//! acceptor answers with a hello of its own or a typed
//! [`HelloReject`] — version mismatches and unknown node ids are
//! protocol-level rejections, not silent drops.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// The wire protocol version spoken by this build. Bumped on any
/// incompatible change to the frame or handshake formats; peers with a
/// different version reject each other during the handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// Feature bit: the peer runs the reliable sublayer (per-link seq/ack/
/// retransmit/dedup) over its data frames.
pub const FEATURE_RELIABLE: u32 = 1;

/// Feature bit: the peer sends liveness heartbeats ([`FrameKind::Ping`])
/// and expects [`FrameKind::Pong`] echoes.
pub const FEATURE_HEARTBEAT: u32 = 1 << 1;

/// Frame magic: `"HOPE"` as a little-endian u32.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"HOPE");

/// Hard ceiling on a frame payload. Anything larger is corruption (or an
/// attack), not traffic: the transport's envelopes are tiny.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of framing overhead per frame (magic + kind + len + crc).
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Identity of one OS-process node in a cluster. Distinct from
/// [`ProcessId`](crate::ProcessId): a node *hosts* many runtime
/// processes; the node id names the address-space boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Builds a node id from its raw numeric value.
    pub const fn from_raw(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// CRC-32 (IEEE, reflected) — same polynomial as `hope-store`'s log
/// framing; duplicated here because `hope-types` sits below every other
/// crate in the dependency graph.
fn crc32(kind: u8, payload: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    crc = (crc >> 8) ^ TABLE[((crc ^ kind as u32) & 0xFF) as usize];
    for &b in payload {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// What a stream frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Handshake opener: a [`NodeHello`].
    Hello = 1,
    /// Handshake acceptance: the responder's own [`NodeHello`].
    HelloOk = 2,
    /// Handshake rejection: a [`HelloReject`].
    HelloReject = 3,
    /// A transport data frame: one encoded [`Envelope`](crate::Envelope).
    Data = 4,
    /// Transport-level acknowledgement of a data frame's link sequence
    /// number (`[seq: u64]`).
    Ack = 5,
    /// Liveness probe (`[nonce: u64]`).
    Ping = 6,
    /// Liveness echo (`[nonce: u64]`, copied from the ping).
    Pong = 7,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloOk,
            3 => FrameKind::HelloReject,
            4 => FrameKind::Data,
            5 => FrameKind::Ack,
            6 => FrameKind::Ping,
            7 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// One reassembled stream frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// The payload bytes (already CRC-verified).
    pub payload: Bytes,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, payload: Bytes) -> Self {
        Frame { kind, payload }
    }

    /// Serializes the frame, header included, ready for a socket write.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_FRAME_LEN`] — the transport
    /// never legitimately builds such a frame.
    pub fn encode(&self) -> Bytes {
        assert!(
            self.payload.len() <= MAX_FRAME_LEN as usize,
            "frame payload exceeds MAX_FRAME_LEN"
        );
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_u8(self.kind as u8);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u32_le(crc32(self.kind as u8, &self.payload));
        buf.put_slice(&self.payload);
        buf.freeze()
    }
}

/// Why a byte stream stopped parsing. Every variant is fatal for the
/// connection that produced it: framing is lost and the link must be
/// torn down and re-established (the reliable sublayer replays anything
/// unacknowledged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The four magic bytes did not match [`FRAME_MAGIC`].
    BadMagic {
        /// What arrived instead.
        found: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversize {
        /// The declared length.
        len: u32,
    },
    /// The payload arrived but its CRC did not match the header's.
    BadCrc {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The kind byte names no known [`FrameKind`].
    UnknownKind(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (stream desynchronized)")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} ceiling")
            }
            FrameError::BadCrc { declared, computed } => {
                write!(
                    f,
                    "frame crc mismatch: declared {declared:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame reassembly over arbitrary read boundaries.
///
/// Feed it whatever each `read()` returned; pull zero or more complete
/// frames after each feed. The reader validates magic, kind, length and
/// CRC *before* surfacing a frame, so a caller never sees a damaged
/// frame — it sees a [`FrameError`] and must drop the connection.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hope_types::net::{Frame, FrameKind, FrameReader};
///
/// let frame = Frame::new(FrameKind::Ping, Bytes::from_static(&[1, 2, 3]));
/// let wire = frame.encode();
/// let mut reader = FrameReader::new();
/// // Bytes arrive split at an arbitrary boundary:
/// reader.feed(&wire[..5]);
/// assert_eq!(reader.next_frame(), Ok(None)); // header incomplete
/// reader.feed(&wire[5..]);
/// assert_eq!(reader.next_frame(), Ok(Some(frame)));
/// ```
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it grows past half.
    read: usize,
    /// Set once a `FrameError` surfaced: the stream is poisoned.
    poisoned: bool,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed into a frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Parses the next complete frame, if the buffer holds one.
    ///
    /// * `Ok(Some(frame))` — a validated frame.
    /// * `Ok(None)` — no complete frame yet; feed more bytes.
    /// * `Err(_)` — the stream is corrupt; the reader stays poisoned and
    ///   every further call returns the same class of failure.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::BadMagic { found: 0xDEAD_DEAD });
        }
        let avail = &self.buf[self.read..];
        if avail.len() < FRAME_HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        if magic != FRAME_MAGIC {
            self.poisoned = true;
            return Err(FrameError::BadMagic { found: magic });
        }
        let kind_byte = avail[4];
        let len = u32::from_le_bytes(avail[5..9].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(FrameError::Oversize { len });
        }
        let declared_crc = u32::from_le_bytes(avail[9..13].try_into().expect("4 bytes"));
        let total = FRAME_HEADER_LEN + len as usize;
        if avail.len() < total {
            self.compact();
            return Ok(None);
        }
        let payload = &avail[FRAME_HEADER_LEN..total];
        let computed = crc32(kind_byte, payload);
        if computed != declared_crc {
            self.poisoned = true;
            return Err(FrameError::BadCrc {
                declared: declared_crc,
                computed,
            });
        }
        let Some(kind) = FrameKind::from_byte(kind_byte) else {
            self.poisoned = true;
            return Err(FrameError::UnknownKind(kind_byte));
        };
        let frame = Frame {
            kind,
            payload: Bytes::copy_from_slice(payload),
        };
        self.read += total;
        self.compact();
        Ok(Some(frame))
    }

    fn compact(&mut self) {
        if self.read > 0 && self.read * 2 >= self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
    }
}

/// The handshake opener: who is calling, speaking which protocol
/// version, with which optional features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHello {
    /// The sender's node id.
    pub node: NodeId,
    /// The sender's [`PROTOCOL_VERSION`].
    pub version: u16,
    /// The sender's feature bits ([`FEATURE_RELIABLE`] | …).
    pub features: u32,
}

impl NodeHello {
    /// A hello for `node` at this build's protocol version with the
    /// standard feature set.
    pub fn current(node: NodeId) -> Self {
        NodeHello {
            node,
            version: PROTOCOL_VERSION,
            features: FEATURE_RELIABLE | FEATURE_HEARTBEAT,
        }
    }

    /// Serializes the hello (frame payload, not a whole frame).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u16_le(self.node.as_raw());
        buf.put_u16_le(self.version);
        buf.put_u32_le(self.features);
        buf.freeze()
    }

    /// Parses a hello payload; `None` on truncated or padded input.
    pub fn decode(buf: &[u8]) -> Option<NodeHello> {
        if buf.len() != 8 {
            return None;
        }
        Some(NodeHello {
            node: NodeId::from_raw(u16::from_le_bytes(buf[0..2].try_into().ok()?)),
            version: u16::from_le_bytes(buf[2..4].try_into().ok()?),
            features: u32::from_le_bytes(buf[4..8].try_into().ok()?),
        })
    }
}

/// Why an acceptor refused a [`NodeHello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloReject {
    /// The dialer speaks a different protocol version.
    VersionMismatch {
        /// The acceptor's version.
        ours: u16,
        /// The dialer's version.
        theirs: u16,
    },
    /// The dialer's node id is not in the acceptor's node directory.
    UnknownNode(NodeId),
    /// The dialer claimed the acceptor's own node id.
    IdCollision(NodeId),
}

mod reject_wire {
    pub const VERSION: u8 = 1;
    pub const UNKNOWN: u8 = 2;
    pub const COLLISION: u8 = 3;
}

impl HelloReject {
    /// Serializes the rejection (frame payload).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(5);
        match self {
            HelloReject::VersionMismatch { ours, theirs } => {
                buf.put_u8(reject_wire::VERSION);
                buf.put_u16_le(*ours);
                buf.put_u16_le(*theirs);
            }
            HelloReject::UnknownNode(node) => {
                buf.put_u8(reject_wire::UNKNOWN);
                buf.put_u16_le(node.as_raw());
            }
            HelloReject::IdCollision(node) => {
                buf.put_u8(reject_wire::COLLISION);
                buf.put_u16_le(node.as_raw());
            }
        }
        buf.freeze()
    }

    /// Parses a rejection payload; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<HelloReject> {
        match (buf.first()?, buf.len()) {
            (&reject_wire::VERSION, 5) => Some(HelloReject::VersionMismatch {
                ours: u16::from_le_bytes(buf[1..3].try_into().ok()?),
                theirs: u16::from_le_bytes(buf[3..5].try_into().ok()?),
            }),
            (&reject_wire::UNKNOWN, 3) => Some(HelloReject::UnknownNode(NodeId::from_raw(
                u16::from_le_bytes(buf[1..3].try_into().ok()?),
            ))),
            (&reject_wire::COLLISION, 3) => Some(HelloReject::IdCollision(NodeId::from_raw(
                u16::from_le_bytes(buf[1..3].try_into().ok()?),
            ))),
            _ => None,
        }
    }
}

impl fmt::Display for HelloReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HelloReject::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: acceptor v{ours}, dialer v{theirs}"
                )
            }
            HelloReject::UnknownNode(node) => write!(f, "node {node} is not in the directory"),
            HelloReject::IdCollision(node) => {
                write!(f, "dialer claims the acceptor's own id {node}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, payload: &[u8]) -> Frame {
        Frame::new(kind, Bytes::copy_from_slice(payload))
    }

    #[test]
    fn frame_round_trips_whole() {
        let f = frame(FrameKind::Data, b"hello world");
        let wire = f.encode();
        let mut r = FrameReader::new();
        r.feed(&wire);
        assert_eq!(r.next_frame(), Ok(Some(f)));
        assert_eq!(r.next_frame(), Ok(None));
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn frame_round_trips_byte_at_a_time() {
        let f = frame(FrameKind::Ack, &[9; 32]);
        let wire = f.encode();
        let mut r = FrameReader::new();
        for b in wire.iter() {
            assert_eq!(r.next_frame(), Ok(None), "no frame before the last byte");
            r.feed(&[*b]);
        }
        assert_eq!(r.next_frame(), Ok(Some(f)));
    }

    #[test]
    fn several_frames_in_one_feed() {
        let a = frame(FrameKind::Ping, &[1]);
        let b = frame(FrameKind::Pong, &[2]);
        let c = frame(FrameKind::Data, &[]);
        let mut wire = a.encode().to_vec();
        wire.extend_from_slice(&b.encode());
        wire.extend_from_slice(&c.encode());
        let mut r = FrameReader::new();
        r.feed(&wire);
        assert_eq!(r.next_frame(), Ok(Some(a)));
        assert_eq!(r.next_frame(), Ok(Some(b)));
        assert_eq!(r.next_frame(), Ok(Some(c)));
        assert_eq!(r.next_frame(), Ok(None));
    }

    #[test]
    fn bad_magic_is_fatal_and_sticky() {
        let mut r = FrameReader::new();
        r.feed(b"NOPE_________");
        let err = r.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadMagic { .. }));
        // Poisoned: even well-formed follow-up bytes cannot resurrect it.
        r.feed(&frame(FrameKind::Ping, &[]).encode());
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn payload_damage_is_rejected_by_crc() {
        let wire = frame(FrameKind::Data, b"payload-bytes").encode();
        for ix in FRAME_HEADER_LEN..wire.len() {
            let mut damaged = wire.to_vec();
            damaged[ix] ^= 0x40;
            let mut r = FrameReader::new();
            r.feed(&damaged);
            assert!(
                matches!(r.next_frame(), Err(FrameError::BadCrc { .. })),
                "flip at {ix} must fail the crc"
            );
        }
    }

    #[test]
    fn kind_damage_is_rejected() {
        let wire = frame(FrameKind::Data, b"x").encode();
        let mut damaged = wire.to_vec();
        damaged[4] = 0xEE; // kind byte: crc covers it
        let mut r = FrameReader::new();
        r.feed(&damaged);
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn oversize_length_is_rejected_before_buffering() {
        let mut wire = frame(FrameKind::Data, b"x").encode().to_vec();
        wire[5..9].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = FrameReader::new();
        r.feed(&wire);
        assert!(matches!(r.next_frame(), Err(FrameError::Oversize { .. })));
    }

    #[test]
    fn hello_round_trips() {
        let hello = NodeHello {
            node: NodeId::from_raw(42),
            version: PROTOCOL_VERSION,
            features: FEATURE_RELIABLE | FEATURE_HEARTBEAT,
        };
        assert_eq!(NodeHello::decode(&hello.encode()), Some(hello));
        assert_eq!(NodeHello::decode(&hello.encode()[..7]), None, "truncated");
        let mut padded = hello.encode().to_vec();
        padded.push(0);
        assert_eq!(NodeHello::decode(&padded), None, "padded");
    }

    #[test]
    fn reject_round_trips_every_variant() {
        let samples = [
            HelloReject::VersionMismatch { ours: 1, theirs: 2 },
            HelloReject::UnknownNode(NodeId::from_raw(7)),
            HelloReject::IdCollision(NodeId::from_raw(3)),
        ];
        for r in samples {
            assert_eq!(HelloReject::decode(&r.encode()), Some(r), "{r}");
        }
        assert_eq!(HelloReject::decode(&[]), None);
        assert_eq!(HelloReject::decode(&[99, 0, 0]), None, "unknown code");
    }

    #[test]
    fn display_is_informative() {
        assert!(NodeId::from_raw(3).to_string().contains("N3"));
        let r = HelloReject::VersionMismatch { ours: 1, theirs: 9 };
        assert!(r.to_string().contains("version"));
        let e = FrameError::Oversize { len: u32::MAX };
        assert!(e.to_string().contains("ceiling"));
    }

    #[test]
    fn compaction_keeps_partial_frames_intact() {
        // Stream many frames through a reader, always feeding fragments
        // that straddle frame boundaries, and confirm nothing is lost to
        // buffer compaction.
        let frames: Vec<Frame> = (0..50u8)
            .map(|i| frame(FrameKind::Data, &vec![i; (i as usize * 7) % 97]))
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(13) {
            r.feed(chunk);
            while let Some(f) = r.next_frame().expect("clean stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }
}

//! Property tests of the stream-frame codec: arbitrary frames must
//! round-trip through `Frame::encode` / `FrameReader` no matter how the
//! byte stream is split at read boundaries, single-byte damage anywhere
//! in a frame must be rejected (never silently decoded as a different
//! valid frame), and the handshake payload codecs must round-trip and
//! reject wrong-length input.

use bytes::Bytes;
use hope_types::net::{Frame, FrameKind, FrameReader, HelloReject, NodeHello, NodeId};
use proptest::prelude::*;

fn kind(pick: u8) -> FrameKind {
    match pick % 7 {
        0 => FrameKind::Hello,
        1 => FrameKind::HelloOk,
        2 => FrameKind::HelloReject,
        3 => FrameKind::Data,
        4 => FrameKind::Ack,
        5 => FrameKind::Ping,
        _ => FrameKind::Pong,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A sequence of frames, concatenated and fed to the reader in
    /// arbitrary chunk sizes (including 1-byte reads), decodes back to
    /// exactly the same frames in order.
    #[test]
    fn frames_round_trip_under_arbitrary_splits(
        frames in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200)), 1..8),
        splits in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let frames: Vec<Frame> = frames
            .into_iter()
            .map(|(k, payload)| Frame::new(kind(k), Bytes::from(payload)))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }

        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut split_ix = 0;
        while offset < stream.len() {
            let chunk = splits[split_ix % splits.len()].min(stream.len() - offset);
            split_ix += 1;
            reader.feed(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(frame) = reader.next_frame().expect("clean stream must parse") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending_len(), 0);
    }

    /// Flipping any single byte of an encoded frame never yields a
    /// decode of a *different* valid frame: the reader either errors
    /// (bad magic / CRC / kind / oversize) or, if the flip only grew the
    /// declared length, stalls waiting for bytes that never arrive.
    #[test]
    fn single_byte_damage_never_decodes_differently(
        k in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos_pick in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let frame = Frame::new(kind(k), Bytes::from(payload));
        let mut bytes = frame.encode().to_vec();
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= flip;

        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        match reader.next_frame() {
            Err(_) => {}                 // typed rejection: the common case
            Ok(None) => {}               // length grew: reader waits, never lies
            Ok(Some(decoded)) => {
                // The only acceptable "success" is decoding the original
                // frame exactly (impossible here since one byte differs
                // and CRC covers kind+payload, but keep the assertion so
                // a codec regression fails loudly rather than silently).
                prop_assert_eq!(decoded, frame);
            }
        }
    }

    /// `NodeHello` round-trips for arbitrary field values and its
    /// decoder rejects truncated and padded buffers.
    #[test]
    fn hello_round_trips_and_rejects_bad_lengths(
        node in any::<u16>(),
        version in any::<u16>(),
        features in any::<u32>(),
        extra in 1usize..8,
    ) {
        let hello = NodeHello { node: NodeId::from_raw(node), version, features };
        let bytes = hello.encode();
        prop_assert_eq!(NodeHello::decode(&bytes), Some(hello));
        prop_assert_eq!(NodeHello::decode(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes.to_vec();
        padded.extend(std::iter::repeat_n(0u8, extra));
        prop_assert_eq!(NodeHello::decode(&padded), None);
    }

    /// Every `HelloReject` variant round-trips through its payload codec.
    #[test]
    fn hello_reject_round_trips(pick in any::<u8>(), a in any::<u16>(), b in any::<u16>()) {
        let reject = match pick % 3 {
            0 => HelloReject::VersionMismatch { ours: a, theirs: b },
            1 => HelloReject::UnknownNode(NodeId::from_raw(a)),
            _ => HelloReject::IdCollision(NodeId::from_raw(a)),
        };
        let bytes = reject.encode();
        prop_assert_eq!(HelloReject::decode(&bytes), Some(reject));
        prop_assert_eq!(HelloReject::decode(&bytes[..bytes.len() - 1]), None);
    }
}

//! Property tests of the wire codec: every `HopeMessage` variant, every
//! `Payload` variant, and the full `Envelope` (including the reliable-link
//! `seq` header and `Ack` payloads) must round-trip through
//! `encode`/`decode` for arbitrary field values, and the decoders must
//! reject truncated or padded frames. Set-algebra laws the codec leans on
//! (union/closure idempotence for the IDO tag) ride along; the basic set
//! laws live in `set_properties.rs`.

use bytes::Bytes;
use hope_types::{
    AidId, Envelope, HopeMessage, IdSet, IdoSet, IntervalId, Payload, ProcessId, UserMessage,
    VirtualTime,
};
use proptest::prelude::*;

fn aid(raw: u64) -> AidId {
    AidId::from_raw(ProcessId::from_raw(raw))
}

fn ido(raws: &[u64]) -> IdoSet {
    raws.iter().map(|&r| aid(r)).collect()
}

fn iid(process: u64, index: u32) -> IntervalId {
    IntervalId::new(ProcessId::from_raw(process), index)
}

/// Every `HopeMessage` variant reachable from one generator; `pick`
/// selects the variant so a single property covers the whole enum.
fn message(pick: u8, p: u64, ix: u32, set: &[u64], flag: bool) -> HopeMessage {
    match pick % 7 {
        0 => HopeMessage::Guess { iid: iid(p, ix) },
        1 => HopeMessage::Affirm {
            iid: flag.then(|| iid(p, ix)),
            ido: ido(set),
        },
        2 => HopeMessage::Deny {
            iid: flag.then(|| iid(p, ix)),
        },
        3 => HopeMessage::Replace {
            iid: iid(p, ix),
            ido: ido(set),
        },
        4 => HopeMessage::Retain,
        5 => HopeMessage::Release,
        _ => HopeMessage::Rollback {
            iid: iid(p, ix),
            cause: flag.then(|| aid(p ^ 0x5a5a)),
        },
    }
}

fn payload(pick: u8, p: u64, ix: u32, set: &[u64], flag: bool, data: &[u8]) -> Payload {
    match pick % 9 {
        7 => Payload::User(UserMessage {
            channel: ix,
            data: Bytes::copy_from_slice(data),
            tag: ido(set),
        }),
        8 => Payload::Ack { seq: p },
        m => Payload::Hope(message(m, p, ix, set, flag)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hope_message_round_trips(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
    ) {
        let m = message(pick, p, ix, &set, flag);
        let wire = m.encode();
        prop_assert_eq!(HopeMessage::decode(&wire), Some(m));
    }

    #[test]
    fn hope_message_rejects_truncation_and_padding(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        cut in any::<u8>(),
    ) {
        let wire = message(pick, p, ix, &set, flag).encode();
        let keep = (cut as usize) % wire.len();
        prop_assert_eq!(HopeMessage::decode(&wire[..keep]), None);
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(HopeMessage::decode(&padded), None);
    }

    #[test]
    fn payload_round_trips(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let pl = payload(pick, p, ix, &set, flag, &data);
        let wire = pl.encode();
        prop_assert_eq!(Payload::decode(&wire), Some(pl));
    }

    #[test]
    fn envelope_round_trips_with_link_header(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
        src in any::<u64>(),
        dst in any::<u64>(),
        sent_at in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let env = Envelope {
            src: ProcessId::from_raw(src),
            dst: ProcessId::from_raw(dst),
            sent_at: VirtualTime::from_nanos(sent_at),
            seq,
            payload: payload(pick, p, ix, &set, flag, &data),
        };
        let wire = env.encode();
        let back = Envelope::decode(&wire);
        prop_assert_eq!(back.as_ref(), Some(&env));
        // The link header fields survive exactly — the retransmission
        // logic keys on (src, dst, seq).
        let back = back.unwrap();
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(back.sent_at.as_nanos(), sent_at);
    }

    #[test]
    fn envelope_rejects_truncation_and_padding(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..16),
        cut in any::<u8>(),
    ) {
        let env = Envelope {
            src: ProcessId::from_raw(1),
            dst: ProcessId::from_raw(2),
            sent_at: VirtualTime::ZERO,
            seq: p,
            payload: payload(pick, p, ix, &set, flag, &data),
        };
        let wire = env.encode();
        let keep = (cut as usize) % wire.len();
        prop_assert_eq!(Envelope::decode(&wire[..keep]), None);
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(Envelope::decode(&padded), None);
    }

    /// The IDO tag written on the wire is a set: encoding drops duplicates
    /// and orders elements, so decode(encode(s)) is the canonical form and
    /// a second round-trip is the identity (codec idempotence).
    #[test]
    fn ido_codec_reaches_fixpoint_in_one_step(
        set in proptest::collection::vec(any::<u64>(), 0..12),
        ix in any::<u32>(),
        p in any::<u64>(),
    ) {
        let m = HopeMessage::Replace { iid: iid(p, ix), ido: ido(&set) };
        let once = HopeMessage::decode(&m.encode()).unwrap();
        let twice = HopeMessage::decode(&once.encode()).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.encode(), twice.encode());
    }

    /// Dependency closure — repeatedly folding each member's own IDO set
    /// into the tag, as implicit guessing does transitively — reaches a
    /// fixpoint, and applying the closure again leaves it unchanged.
    #[test]
    fn dependency_closure_is_idempotent(
        seed in proptest::collection::vec(any::<u8>(), 1..8),
        deps in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24),
    ) {
        fn close(start: &IdSet<u8>, deps: &[(u8, u8)]) -> IdSet<u8> {
            let mut s = start.clone();
            loop {
                let mut grew = false;
                for &(from, to) in deps {
                    if s.contains(&from) && s.insert(to) {
                        grew = true;
                    }
                }
                if !grew {
                    return s;
                }
            }
        }
        let start: IdSet<u8> = seed.iter().copied().collect();
        let closed = close(&start, &deps);
        prop_assert!(start.is_subset(&closed));
        prop_assert_eq!(close(&closed, &deps), closed.clone());
        // Closure is monotone w.r.t. union: closing the union is the same
        // as closing the union of the closures.
        let closed_union = close(&closed.union(&start), &deps);
        prop_assert_eq!(closed_union, closed);
    }
}

//! Property tests of the wire codec: every `HopeMessage` variant, every
//! `Payload` variant, and the full `Envelope` (including the reliable-link
//! `seq` header and `Ack` payloads) must round-trip through
//! `encode`/`decode` for arbitrary field values, and the decoders must
//! reject truncated or padded frames. Set-algebra laws the codec leans on
//! (union/closure idempotence for the IDO tag) ride along; the basic set
//! laws live in `set_properties.rs`.

use bytes::Bytes;
use hope_types::{
    AidId, Envelope, HopeMessage, IdSet, IdoSet, IntervalId, Payload, ProcessId, SetCoding,
    TagDecoder, TagEncoder, UserMessage, VirtualTime,
};
use proptest::prelude::*;

fn aid(raw: u64) -> AidId {
    AidId::from_raw(ProcessId::from_raw(raw))
}

fn ido(raws: &[u64]) -> IdoSet {
    raws.iter().map(|&r| aid(r)).collect()
}

fn iid(process: u64, index: u32) -> IntervalId {
    IntervalId::new(ProcessId::from_raw(process), index)
}

/// Every `HopeMessage` variant reachable from one generator; `pick`
/// selects the variant so a single property covers the whole enum.
fn message(pick: u8, p: u64, ix: u32, set: &[u64], flag: bool) -> HopeMessage {
    match pick % 7 {
        0 => HopeMessage::Guess { iid: iid(p, ix) },
        1 => HopeMessage::Affirm {
            iid: flag.then(|| iid(p, ix)),
            ido: ido(set),
        },
        2 => HopeMessage::Deny {
            iid: flag.then(|| iid(p, ix)),
        },
        3 => HopeMessage::Replace {
            iid: iid(p, ix),
            ido: ido(set),
        },
        4 => HopeMessage::Retain,
        5 => HopeMessage::Release,
        _ => HopeMessage::Rollback {
            iid: iid(p, ix),
            cause: flag.then(|| aid(p ^ 0x5a5a)),
        },
    }
}

fn payload(pick: u8, p: u64, ix: u32, set: &[u64], flag: bool, data: &[u8]) -> Payload {
    match pick % 9 {
        7 => Payload::User(UserMessage {
            channel: ix,
            data: Bytes::copy_from_slice(data),
            tag: ido(set),
        }),
        8 => Payload::Ack { seq: p },
        m => Payload::Hope(message(m, p, ix, set, flag)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hope_message_round_trips(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
    ) {
        let m = message(pick, p, ix, &set, flag);
        let wire = m.encode();
        prop_assert_eq!(HopeMessage::decode(&wire), Some(m));
    }

    #[test]
    fn hope_message_rejects_truncation_and_padding(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        cut in any::<u8>(),
    ) {
        let wire = message(pick, p, ix, &set, flag).encode();
        let keep = (cut as usize) % wire.len();
        prop_assert_eq!(HopeMessage::decode(&wire[..keep]), None);
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(HopeMessage::decode(&padded), None);
    }

    #[test]
    fn payload_round_trips(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let pl = payload(pick, p, ix, &set, flag, &data);
        let wire = pl.encode();
        prop_assert_eq!(Payload::decode(&wire), Some(pl));
    }

    #[test]
    fn envelope_round_trips_with_link_header(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
        src in any::<u64>(),
        dst in any::<u64>(),
        sent_at in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let env = Envelope {
            src: ProcessId::from_raw(src),
            dst: ProcessId::from_raw(dst),
            sent_at: VirtualTime::from_nanos(sent_at),
            seq,
            payload: payload(pick, p, ix, &set, flag, &data),
        };
        let wire = env.encode();
        let back = Envelope::decode(&wire);
        prop_assert_eq!(back.as_ref(), Some(&env));
        // The link header fields survive exactly — the retransmission
        // logic keys on (src, dst, seq).
        let back = back.unwrap();
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(back.sent_at.as_nanos(), sent_at);
    }

    #[test]
    fn envelope_rejects_truncation_and_padding(
        pick in any::<u8>(),
        p in any::<u64>(),
        ix in any::<u32>(),
        set in proptest::collection::vec(any::<u64>(), 0..6),
        flag in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..16),
        cut in any::<u8>(),
    ) {
        let env = Envelope {
            src: ProcessId::from_raw(1),
            dst: ProcessId::from_raw(2),
            sent_at: VirtualTime::ZERO,
            seq: p,
            payload: payload(pick, p, ix, &set, flag, &data),
        };
        let wire = env.encode();
        let keep = (cut as usize) % wire.len();
        prop_assert_eq!(Envelope::decode(&wire[..keep]), None);
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(Envelope::decode(&padded), None);
    }

    /// The IDO tag written on the wire is a set: encoding drops duplicates
    /// and orders elements, so decode(encode(s)) is the canonical form and
    /// a second round-trip is the identity (codec idempotence).
    #[test]
    fn ido_codec_reaches_fixpoint_in_one_step(
        set in proptest::collection::vec(any::<u64>(), 0..12),
        ix in any::<u32>(),
        p in any::<u64>(),
    ) {
        let m = HopeMessage::Replace { iid: iid(p, ix), ido: ido(&set) };
        let once = HopeMessage::decode(&m.encode()).unwrap();
        let twice = HopeMessage::decode(&once.encode()).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.encode(), twice.encode());
    }

    /// Both `SetCoding` variants survive the wire exactly, advertise
    /// their encoded size truthfully, and the decoder rejects truncated
    /// or padded frames — the delta path must be as strict as the full
    /// path or loss corruption would slip through silently.
    #[test]
    fn set_coding_round_trips_and_rejects_damage(
        full in any::<bool>(),
        base in any::<u64>(),
        a in proptest::collection::vec(any::<u64>(), 0..10),
        b in proptest::collection::vec(any::<u64>(), 0..10),
        cut in any::<u8>(),
    ) {
        let coding = if full {
            SetCoding::Full { set: ido(&a) }
        } else {
            // Honest delta shape: add and del are disjoint by construction.
            SetCoding::Delta {
                base_seq: base,
                add: ido(&a),
                del: ido(&b).difference(&ido(&a)),
            }
        };
        let wire = coding.encode();
        prop_assert_eq!(wire.len(), coding.wire_len());
        prop_assert_eq!(SetCoding::decode(&wire), Some(coding));
        let keep = (cut as usize) % wire.len();
        prop_assert_eq!(SetCoding::decode(&wire[..keep]), None);
        let mut padded = wire.to_vec();
        padded.push(0);
        prop_assert_eq!(SetCoding::decode(&padded), None);
    }

    /// Drive an encoder/decoder pair through an arbitrary in-order but
    /// lossy, partially acked link session: every set the decoder
    /// reconstructs must equal the set the encoder was handed — deltas
    /// included — and with matching windows an in-order session never
    /// loses a delta base (acked bases are always still retained when a
    /// delta referencing them arrives).
    #[test]
    fn encoder_decoder_agree_across_lossy_sessions(
        sets in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..40),
        fate in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut enc = TagEncoder::new(6);
        let mut dec = TagDecoder::new(6);
        let mut acked_any = false;
        for (i, raws) in sets.iter().enumerate() {
            let seq = (i + 1) as u64;
            let tag = ido(&raws.iter().copied().map(u64::from).collect::<Vec<_>>());
            let coding = enc.encode(seq, &tag);
            if !acked_any {
                prop_assert!(
                    matches!(coding, SetCoding::Full { .. }),
                    "no acked base yet: must ship verbatim"
                );
            }
            // Every coding rides the wire; round-trip it like the link does.
            let coding = SetCoding::decode(&coding.encode()).unwrap();
            match fate[i % fate.len()] % 3 {
                0 => {} // lost on the wire: never decoded, never acked
                f => {
                    let got = dec.decode(seq, &coding);
                    prop_assert_eq!(
                        got,
                        Some(tag),
                        "in-order delivery never loses a delta base"
                    );
                    if f == 2 {
                        enc.on_ack(seq);
                        acked_any = true;
                    }
                }
            }
        }
    }

    /// Receiver state loss (crash/restart) degrades but never corrupts:
    /// an in-flight delta referencing a pre-crash base fails to decode
    /// (it is never misapplied), and the first `Full` coding after the
    /// sender resets resynchronizes the pair exactly.
    #[test]
    fn full_coding_resyncs_after_receiver_state_loss(
        pre in proptest::collection::vec(any::<u8>(), 0..10),
        post in proptest::collection::vec(any::<u8>(), 0..10),
    ) {
        let mut enc = TagEncoder::default();
        let mut dec = TagDecoder::default();
        let pre_tag = ido(&pre.iter().copied().map(u64::from).collect::<Vec<_>>());
        let post_tag = ido(&post.iter().copied().map(u64::from).collect::<Vec<_>>());
        let c1 = enc.encode(1, &pre_tag);
        prop_assert_eq!(dec.decode(1, &c1), Some(pre_tag));
        enc.on_ack(1);
        // The receiver restarts while the next envelope is in flight.
        let c2 = enc.encode(2, &post_tag);
        prop_assert!(matches!(c2, SetCoding::Delta { .. }));
        dec.reset();
        prop_assert_eq!(
            dec.decode(2, &c2),
            None,
            "a delta against a lost base must fail, not misapply"
        );
        // Session re-establishment resets the sender; resync is verbatim.
        enc.reset();
        let c3 = enc.encode(3, &post_tag);
        prop_assert!(matches!(c3, SetCoding::Full { .. }));
        prop_assert_eq!(dec.decode(3, &c3), Some(post_tag));
    }

    /// Dependency closure — repeatedly folding each member's own IDO set
    /// into the tag, as implicit guessing does transitively — reaches a
    /// fixpoint, and applying the closure again leaves it unchanged.
    #[test]
    fn dependency_closure_is_idempotent(
        seed in proptest::collection::vec(any::<u8>(), 1..8),
        deps in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24),
    ) {
        fn close(start: &IdSet<u8>, deps: &[(u8, u8)]) -> IdSet<u8> {
            let mut s = start.clone();
            loop {
                let mut grew = false;
                for &(from, to) in deps {
                    if s.contains(&from) && s.insert(to) {
                        grew = true;
                    }
                }
                if !grew {
                    return s;
                }
            }
        }
        let start: IdSet<u8> = seed.iter().copied().collect();
        let closed = close(&start, &deps);
        prop_assert!(start.is_subset(&closed));
        prop_assert_eq!(close(&closed, &deps), closed.clone());
        // Closure is monotone w.r.t. union: closing the union is the same
        // as closing the union of the closures.
        let closed_union = close(&closed.union(&start), &deps);
        prop_assert_eq!(closed_union, closed);
    }
}

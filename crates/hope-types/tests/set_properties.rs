//! Property-based tests of the dependency-set algebra ([`IdSet`]): the
//! HOPE algorithm is set manipulation all the way down, so the laws the
//! proofs rely on must hold for every input, not just the unit cases.

use hope_types::IdSet;
use proptest::prelude::*;

fn set(items: &[u16]) -> IdSet<u16> {
    items.iter().copied().collect()
}

proptest! {
    #[test]
    fn iteration_is_sorted_and_unique(items in proptest::collection::vec(any::<u16>(), 0..50)) {
        let s = set(&items);
        let v: Vec<u16> = s.iter().copied().collect();
        let mut expected = items.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn insert_then_contains(items in proptest::collection::vec(any::<u16>(), 0..50), probe in any::<u16>()) {
        let mut s = set(&items);
        let was_new = s.insert(probe);
        prop_assert_eq!(was_new, !items.contains(&probe));
        prop_assert!(s.contains(&probe));
    }

    #[test]
    fn remove_inverts_insert(items in proptest::collection::vec(any::<u16>(), 0..50), probe in any::<u16>()) {
        let mut s = set(&items);
        let had = s.contains(&probe);
        let removed = s.remove(&probe);
        prop_assert_eq!(removed, had);
        prop_assert!(!s.contains(&probe));
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert!(sa.is_subset(&sa.union(&sb)));
        prop_assert!(sb.is_subset(&sa.union(&sb)));
    }

    #[test]
    fn difference_and_intersection_partition(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        let diff = sa.difference(&sb);
        let inter = sa.intersection(&sb);
        // diff ∪ inter == a, diff ∩ b == ∅, inter ⊆ b
        prop_assert_eq!(diff.union(&inter), sa.clone());
        prop_assert!(diff.is_disjoint(&sb));
        prop_assert!(inter.is_subset(&sb));
    }

    #[test]
    fn subset_antisymmetry(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        if sa.is_subset(&sb) && sb.is_subset(&sa) {
            prop_assert_eq!(sa, sb);
        }
    }

    #[test]
    fn len_matches_reality(items in proptest::collection::vec(any::<u16>(), 0..50)) {
        let s = set(&items);
        let mut dedup = items.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(s.len(), dedup.len());
        prop_assert_eq!(s.is_empty(), dedup.is_empty());
    }

    /// The two-pointer merge implementations (and the inline/shared tier
    /// split behind them) must agree with the naive `BTreeSet`
    /// formulation on every operation, for every input.
    #[test]
    fn merge_ops_agree_with_naive_sets(
        a in proptest::collection::vec(any::<u16>(), 0..40),
        b in proptest::collection::vec(any::<u16>(), 0..40),
    ) {
        use std::collections::BTreeSet;
        let (sa, sb) = (set(&a), set(&b));
        let na: BTreeSet<u16> = a.iter().copied().collect();
        let nb: BTreeSet<u16> = b.iter().copied().collect();
        let as_vec = |s: IdSet<u16>| s.iter().copied().collect::<Vec<_>>();
        prop_assert_eq!(
            as_vec(sa.union(&sb)),
            na.union(&nb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            as_vec(sa.difference(&sb)),
            na.difference(&nb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            as_vec(sa.intersection(&sb)),
            na.intersection(&nb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(sa.is_subset(&sb), na.is_subset(&nb));
        prop_assert_eq!(sa.is_disjoint(&sb), na.is_disjoint(&nb));
    }

    /// Equality, ordering and hashing are representation-independent: a
    /// set grown by incremental inserts (crossing the inline→shared
    /// promotion) equals, compares equal to, and hashes identically to
    /// the same set collected in one shot.
    #[test]
    fn eq_and_hash_ignore_storage_tier(items in proptest::collection::vec(any::<u16>(), 0..40)) {
        use std::hash::{Hash, Hasher};
        fn fingerprint<T: Hash>(t: &T) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        }
        let collected = set(&items);
        let mut incremental: IdSet<u16> = IdSet::new();
        for &x in &items {
            incremental.insert(x);
        }
        prop_assert_eq!(&incremental, &collected);
        prop_assert_eq!(incremental.cmp(&collected), std::cmp::Ordering::Equal);
        prop_assert_eq!(fingerprint(&incremental), fingerprint(&collected));
    }

    /// The Control replace rule's core step — remove the sender, add the
    /// replacement minus UDO — never lets a set grow beyond the union and
    /// never resurrects the removed sender from the replacement's leftovers.
    #[test]
    fn replace_step_bounds(
        ido in proptest::collection::vec(any::<u16>(), 0..20),
        rep in proptest::collection::vec(any::<u16>(), 0..20),
        udo in proptest::collection::vec(any::<u16>(), 0..20),
        sender in any::<u16>(),
    ) {
        let mut s = set(&ido);
        let udo = set(&udo);
        for &y in set(&rep).iter() {
            if udo.contains(&y) {
                continue;
            }
            s.insert(y);
        }
        s.remove(&sender);
        prop_assert!(!s.contains(&sender));
        let bound = set(&ido).union(&set(&rep));
        prop_assert!(s.is_subset(&bound));
        prop_assert!(s.intersection(&udo).is_subset(&set(&ido)),
            "UDO members can only remain if they were already present");
    }
}

//! Property-based tests of the dependency-set algebra ([`IdSet`]): the
//! HOPE algorithm is set manipulation all the way down, so the laws the
//! proofs rely on must hold for every input, not just the unit cases.

use hope_types::IdSet;
use proptest::prelude::*;

fn set(items: &[u16]) -> IdSet<u16> {
    items.iter().copied().collect()
}

proptest! {
    #[test]
    fn iteration_is_sorted_and_unique(items in proptest::collection::vec(any::<u16>(), 0..50)) {
        let s = set(&items);
        let v: Vec<u16> = s.iter().copied().collect();
        let mut expected = items.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn insert_then_contains(items in proptest::collection::vec(any::<u16>(), 0..50), probe in any::<u16>()) {
        let mut s = set(&items);
        let was_new = s.insert(probe);
        prop_assert_eq!(was_new, !items.contains(&probe));
        prop_assert!(s.contains(&probe));
    }

    #[test]
    fn remove_inverts_insert(items in proptest::collection::vec(any::<u16>(), 0..50), probe in any::<u16>()) {
        let mut s = set(&items);
        let had = s.contains(&probe);
        let removed = s.remove(&probe);
        prop_assert_eq!(removed, had);
        prop_assert!(!s.contains(&probe));
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert!(sa.is_subset(&sa.union(&sb)));
        prop_assert!(sb.is_subset(&sa.union(&sb)));
    }

    #[test]
    fn difference_and_intersection_partition(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        let diff = sa.difference(&sb);
        let inter = sa.intersection(&sb);
        // diff ∪ inter == a, diff ∩ b == ∅, inter ⊆ b
        prop_assert_eq!(diff.union(&inter), sa.clone());
        prop_assert!(diff.is_disjoint(&sb));
        prop_assert!(inter.is_subset(&sb));
    }

    #[test]
    fn subset_antisymmetry(
        a in proptest::collection::vec(any::<u16>(), 0..30),
        b in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let (sa, sb) = (set(&a), set(&b));
        if sa.is_subset(&sb) && sb.is_subset(&sa) {
            prop_assert_eq!(sa, sb);
        }
    }

    #[test]
    fn len_matches_reality(items in proptest::collection::vec(any::<u16>(), 0..50)) {
        let s = set(&items);
        let mut dedup = items.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(s.len(), dedup.len());
        prop_assert_eq!(s.is_empty(), dedup.is_empty());
    }

    /// The Control replace rule's core step — remove the sender, add the
    /// replacement minus UDO — never lets a set grow beyond the union and
    /// never resurrects the removed sender from the replacement's leftovers.
    #[test]
    fn replace_step_bounds(
        ido in proptest::collection::vec(any::<u16>(), 0..20),
        rep in proptest::collection::vec(any::<u16>(), 0..20),
        udo in proptest::collection::vec(any::<u16>(), 0..20),
        sender in any::<u16>(),
    ) {
        let mut s = set(&ido);
        let udo = set(&udo);
        for &y in set(&rep).iter() {
            if udo.contains(&y) {
                continue;
            }
            s.insert(y);
        }
        s.remove(&sender);
        prop_assert!(!s.contains(&sender));
        let bound = set(&ido).union(&set(&rep));
        prop_assert!(s.is_subset(&bound));
        prop_assert!(s.intersection(&udo).is_subset(&set(&ido)),
            "UDO members can only remain if they were already present");
    }
}

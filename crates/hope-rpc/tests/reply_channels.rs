//! Reply-channel collision regression and PR-4 wire-coding coverage.
//!
//! The original allocator drew reply channels from 31 random bits with no
//! collision check; two in-flight calls could alias and each would consume
//! the other's reply. The sequence-derived allocator makes aliasing
//! impossible, and these tests pin the observable contract: many
//! overlapping calls all pair with their own replies, including over the
//! reliable sublayer where dependency tags ride the delta codec.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{RpcClient, RpcServer, StreamingClient};
use hope_runtime::NetworkConfig;
use hope_types::VirtualDuration;

/// Spawns an adder server: method m, body [x] -> [x + m].
fn spawn_adder(env: &mut HopeEnv) -> hope_types::ProcessId {
    env.spawn_user("adder", |ctx| {
        RpcServer::serve(ctx, |ctx, method, body| {
            ctx.compute(VirtualDuration::from_micros(10));
            Bytes::from(vec![body[0].wrapping_add(method as u8)])
        });
    })
}

/// Many overlapping streamed calls from one client: every promise must
/// redeem to its own call's reply. Under the random allocator two of the
/// 24 in-flight calls sharing a channel would cross-wire their replies.
#[test]
fn overlapping_calls_keep_their_replies_apart() {
    let mut env = HopeEnv::builder()
        .seed(13)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_adder(&mut env);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let promises: Vec<_> = (0..24u8)
            .map(|i| {
                StreamingClient::call(
                    ctx,
                    server,
                    0,
                    Bytes::from(vec![i]),
                    Bytes::from(vec![200]), // wrong: force the receive path
                )
            })
            .collect();
        let replies: Vec<u8> = promises
            .into_iter()
            .map(|p| p.redeem_actual(ctx)[0])
            .collect();
        if !ctx.is_replaying() {
            *o.lock().unwrap() = replies;
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let replies = out.lock().unwrap().clone();
    assert_eq!(replies, (0..24u8).collect::<Vec<_>>());
}

/// RPC traffic over the reliable sublayer exercises the PR-4 dependency-
/// tag delta codec: repeated sends on the client<->server links must ship
/// deltas (not verbatim tags) and never trip the shadow-decode check.
#[test]
fn rpc_over_reliable_link_uses_delta_coding() {
    let mut env = HopeEnv::builder()
        .seed(14)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(2)))
        .reliable(true)
        .build();
    let server = spawn_adder(&mut env);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let mut replies = Vec::new();
        for i in 0..8u8 {
            let reply = RpcClient::call(ctx, server, 1, Bytes::from(vec![i]));
            replies.push(reply[0]);
        }
        if !ctx.is_replaying() {
            *o.lock().unwrap() = replies;
        }
        RpcServer::stop(ctx, server);
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_eq!(out.lock().unwrap().clone(), (1..=8u8).collect::<Vec<_>>());
    let link = report.run.stats.link();
    assert!(link.tags_full >= 1, "first send on a link ships Full");
    assert!(
        link.tags_delta > 0,
        "steady-state sends must ride the delta codec: {link}"
    );
    // No byte-saving claim here: these tags are mostly empty, where the
    // delta header is pure overhead. The savings are pinned by the
    // hope-bench wire-cost baselines on tag-heavy workloads.
    assert_eq!(link.tag_decode_mismatch, 0, "shadow decode must agree");
}

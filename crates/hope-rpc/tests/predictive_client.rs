//! End-to-end tests for the predictive streaming client: learning caches,
//! fallback to sync, and correctness under mispredictions.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{CallOutcome, FunctionPredictor, LastValuePredictor, PredictiveClient, RpcServer};
use hope_runtime::NetworkConfig;
use hope_types::VirtualDuration;

/// A server whose reply for method m is [m + generation], where the
/// generation bumps on method 99 — lets tests invalidate caches.
fn spawn_server(env: &mut HopeEnv) -> hope_types::ProcessId {
    env.spawn_user("server", |ctx| {
        let mut generation = 0u8;
        RpcServer::serve(ctx, move |ctx, method, _body| {
            ctx.compute(VirtualDuration::from_micros(10));
            if method == 99 {
                generation += 1;
            }
            Bytes::from(vec![(method as u8).wrapping_add(generation)])
        });
    })
}

#[test]
fn last_value_cache_warms_up_then_streams() {
    let mut env = HopeEnv::builder()
        .seed(1)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_server(&mut env);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let o = outcomes.clone();
    env.spawn_user("client", move |ctx| {
        let mut client = PredictiveClient::new(server, LastValuePredictor::new());
        let mut seen = Vec::new();
        // Cold: synchronous. Then warm: predicted, wait-free.
        for _ in 0..3 {
            let (reply, outcome) = client.call(ctx, 7, Bytes::new());
            seen.push((reply[0], outcome));
        }
        if !ctx.is_replaying() {
            *o.lock().unwrap() = seen.clone();
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let seen = outcomes.lock().unwrap().clone();
    assert_eq!(
        seen,
        vec![
            (7, CallOutcome::Synchronous),
            (7, CallOutcome::Predicted),
            (7, CallOutcome::Predicted),
        ]
    );
}

#[test]
fn stale_cache_mispredicts_then_recovers() {
    let mut env = HopeEnv::builder()
        .seed(2)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_server(&mut env);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let o = outcomes.clone();
    env.spawn_user("client", move |ctx| {
        let mut client = PredictiveClient::new(server, LastValuePredictor::new());
        let mut seen = Vec::new();
        let (r1, o1) = client.call(ctx, 7, Bytes::new()); // sync: 7
        let (_, _) = client.call(ctx, 99, Bytes::new()); // bump generation
        let (r2, o2) = client.call(ctx, 7, Bytes::new()); // stale cache: 7 ≠ 8
        let (r3, o3) = client.call(ctx, 7, Bytes::new()); // learned: 8
        seen.push((r1[0], o1));
        seen.push((r2[0], o2));
        seen.push((r3[0], o3));
        if !ctx.is_replaying() {
            *o.lock().unwrap() = seen.clone();
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let seen = outcomes.lock().unwrap().clone();
    assert_eq!(seen[0], (7, CallOutcome::Synchronous));
    assert_eq!(
        seen[1],
        (8, CallOutcome::Mispredicted),
        "stale prediction must roll back and yield the true reply"
    );
    assert_eq!(seen[2], (8, CallOutcome::Predicted), "cache re-learned");
    assert!(report.hope.rollbacks >= 1);
}

#[test]
fn function_predictor_streams_from_the_first_call() {
    let mut env = HopeEnv::builder()
        .seed(3)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_server(&mut env);
    let outcomes = Arc::new(Mutex::new(None));
    let o = outcomes.clone();
    env.spawn_user("client", move |ctx| {
        // The application knows the server's function exactly.
        let model = FunctionPredictor::new(|method: u32, _body: &Bytes| {
            Some(Bytes::from(vec![method as u8]))
        });
        let mut client = PredictiveClient::new(server, model);
        let start = ctx.now();
        let (reply, outcome) = client.call(ctx, 5, Bytes::new());
        let elapsed = ctx.now() - start;
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some((reply[0], outcome, elapsed));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (value, outcome, elapsed) = outcomes.lock().unwrap().unwrap();
    assert_eq!(value, 5);
    assert_eq!(outcome, CallOutcome::Predicted);
    assert_eq!(
        elapsed,
        VirtualDuration::ZERO,
        "a perfect model makes every call wait-free"
    );
}

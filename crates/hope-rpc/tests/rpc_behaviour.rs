//! Integration tests for synchronous RPC and optimistic call streaming.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{RpcClient, RpcServer, StreamingClient};
use hope_runtime::NetworkConfig;
use hope_types::{VirtualDuration, VirtualTime};

/// Spawns an adder server: method m, body [x] -> [x + m].
fn spawn_adder(env: &mut HopeEnv) -> hope_types::ProcessId {
    env.spawn_user("adder", |ctx| {
        RpcServer::serve(ctx, |ctx, method, body| {
            ctx.compute(VirtualDuration::from_micros(10)); // service time
            Bytes::from(vec![body[0].wrapping_add(method as u8)])
        });
    })
}

/// Asserts that the only processes left blocked at quiescence are the
/// long-lived servers in `allowed` (clients, WorryWarts and lingerers must
/// all have resolved).
fn assert_blocked_only(report: &hope_core::HopeReport, allowed: &[hope_types::ProcessId]) {
    for (pid, name) in &report.run.blocked {
        assert!(
            allowed.contains(pid),
            "unexpected blocked process {pid} ({name}); blocked: {:?}",
            report.run.blocked
        );
    }
}

#[test]
fn sync_call_returns_reply_and_costs_round_trip() {
    let mut env = HopeEnv::builder()
        .seed(2)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_adder(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let start = ctx.now();
        let reply = RpcClient::call(ctx, server, 1, Bytes::from_static(&[41]));
        let elapsed = ctx.now() - start;
        *o.lock().unwrap() = Some((reply[0], elapsed));
        RpcServer::stop(ctx, server);
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (value, elapsed) = out.lock().unwrap().unwrap();
    assert_eq!(value, 42);
    // Two 5 ms hops plus 10 µs service time.
    assert_eq!(elapsed, VirtualDuration::from_micros(10_010));
}

#[test]
fn correct_prediction_avoids_the_round_trip() {
    let mut env = HopeEnv::builder()
        .seed(2)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_adder(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let start = ctx.now();
        let promise = StreamingClient::call(
            ctx,
            server,
            1,
            Bytes::from_static(&[41]),
            Bytes::from_static(&[42]),
        );
        let (reply, was_predicted) = promise.redeem(ctx);
        let elapsed = ctx.now() - start;
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some((reply[0], was_predicted, elapsed));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_blocked_only(&report, &[server]);
    let (value, was_predicted, elapsed) = (*out.lock().unwrap()).unwrap();
    assert_eq!(value, 42);
    assert!(was_predicted);
    assert_eq!(
        elapsed,
        VirtualDuration::ZERO,
        "a correct prediction must cost zero waiting"
    );
    assert_eq!(report.hope.rollbacks, 0);
}

#[test]
fn wrong_prediction_rolls_back_and_yields_true_reply() {
    let mut env = HopeEnv::builder()
        .seed(2)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_adder(&mut env);
    let observations = Arc::new(Mutex::new(Vec::new()));
    let obs = observations.clone();
    env.spawn_user("client", move |ctx| {
        let promise = StreamingClient::call(
            ctx,
            server,
            1,
            Bytes::from_static(&[41]),
            Bytes::from_static(&[99]), // wrong prediction
        );
        let (reply, was_predicted) = promise.redeem(ctx);
        if !ctx.is_replaying() {
            obs.lock().unwrap().push((reply[0], was_predicted));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_blocked_only(&report, &[server]);
    let seen = observations.lock().unwrap().clone();
    // First the optimistic (wrong) value, then the corrected one.
    assert_eq!(seen, vec![(99, true), (42, false)]);
    assert!(report.hope.rollbacks >= 1);
}

#[test]
fn speculative_work_after_redeem_is_rolled_back_too() {
    // Work performed on a wrong prediction must be undone: the trace shows
    // it happened, but the final externally visible send reflects only the
    // corrected value.
    let mut env = HopeEnv::builder().seed(4).build();
    let server = spawn_adder(&mut env);
    let sink_values = Arc::new(Mutex::new(Vec::new()));
    let sv = sink_values.clone();
    let sink = env.spawn_user("sink", move |ctx| {
        let m = ctx.receive(Some(7));
        if !ctx.is_replaying() {
            sv.lock().unwrap().push(m.data[0]);
        }
        // Wait for the confirmation marker so speculative deliveries can
        // be superseded before we finish.
        let _ = ctx.receive(Some(8));
    });
    env.spawn_user("client", move |ctx| {
        let promise = StreamingClient::call(
            ctx,
            server,
            0,
            Bytes::from_static(&[10]),
            Bytes::from_static(&[77]), // wrong: true reply is 10
        );
        let (reply, _) = promise.redeem(ctx);
        // Derived speculative work: double it and ship it.
        let doubled = reply[0] * 2;
        ctx.send(sink, 7, Bytes::from(vec![doubled]));
        ctx.send(sink, 8, Bytes::from_static(b"done"));
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_blocked_only(&report, &[server]);
    let seen = sink_values.lock().unwrap().clone();
    // The sink may observe the speculative 154 first, but must end up
    // consuming the corrected 20.
    assert_eq!(*seen.last().unwrap(), 20, "seen: {seen:?}");
}

#[test]
fn two_overlapping_streamed_calls_overlap_their_latency() {
    let mut env = HopeEnv::builder()
        .seed(5)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(10)))
        .build();
    let server = spawn_adder(&mut env);
    let elapsed_out = Arc::new(Mutex::new(None));
    let eo = elapsed_out.clone();
    env.spawn_user("client", move |ctx| {
        let start = ctx.now();
        let p1 = StreamingClient::call(
            ctx,
            server,
            1,
            Bytes::from_static(&[1]),
            Bytes::from_static(&[2]),
        );
        let p2 = StreamingClient::call(
            ctx,
            server,
            1,
            Bytes::from_static(&[2]),
            Bytes::from_static(&[3]),
        );
        let (r1, _) = p1.redeem(ctx);
        let (r2, _) = p2.redeem(ctx);
        if !ctx.is_replaying() {
            *eo.lock().unwrap() = Some((r1[0], r2[0], ctx.now() - start));
        }
        RpcServer::stop(ctx, server);
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (r1, r2, elapsed) = elapsed_out.lock().unwrap().unwrap();
    assert_eq!((r1, r2), (2, 3));
    assert_eq!(elapsed, VirtualDuration::ZERO, "both calls fully hidden");
}

#[test]
fn redeem_actual_waits_like_sync_rpc() {
    let mut env = HopeEnv::builder()
        .seed(2)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(5)))
        .build();
    let server = spawn_adder(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let start = ctx.now();
        let promise = StreamingClient::call(
            ctx,
            server,
            1,
            Bytes::from_static(&[1]),
            Bytes::from_static(&[2]),
        );
        let reply = promise.redeem_actual(ctx);
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some((reply[0], ctx.now() - start));
        }
        RpcServer::stop(ctx, server);
    });
    let report = env.run();
    assert!(report.is_clean());
    let (value, elapsed) = out.lock().unwrap().unwrap();
    assert_eq!(value, 2);
    assert!(
        elapsed >= VirtualDuration::from_millis(10),
        "redeem_actual pays the round trip: {elapsed}"
    );
}

#[test]
fn server_state_survives_speculative_clients() {
    // A counter server accumulates across calls; a wrong prediction by one
    // client must not corrupt the server's state as seen by a later call.
    let mut env = HopeEnv::builder().seed(6).build();
    let server = env.spawn_user("counter", |ctx| {
        let mut total: u64 = 0;
        RpcServer::serve(ctx, move |_ctx, _method, body| {
            total += body[0] as u64;
            Bytes::from(total.to_le_bytes().to_vec())
        });
    });
    let out = Arc::new(Mutex::new(Vec::new()));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        // Streamed with a wrong prediction: rollbacks happen.
        let p = StreamingClient::call(
            ctx,
            server,
            0,
            Bytes::from_static(&[5]),
            Bytes::from_static(&[0; 8]),
        );
        let (r1, _) = p.redeem(ctx);
        // Then a synchronous call on the corrected path.
        let r2 = RpcClient::call(ctx, server, 0, Bytes::from_static(&[7]));
        if !ctx.is_replaying() {
            let v1 = u64::from_le_bytes(r1[..8].try_into().unwrap());
            let v2 = u64::from_le_bytes(r2[..8].try_into().unwrap());
            o.lock().unwrap().push((v1, v2));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_blocked_only(&report, &[server]);
    let seen = out.lock().unwrap().clone();
    let (v1, v2) = *seen.last().unwrap();
    assert_eq!(v1, 5);
    assert_eq!(v2, 12, "server tally must be consistent, saw {seen:?}");
}

#[test]
fn streaming_beats_sync_for_a_dependent_chain() {
    // The headline comparison (E3): k dependent calls, correct
    // predictions. Sync pays k round trips; streaming pays ~none.
    fn run(streamed: bool) -> VirtualTime {
        let mut env = HopeEnv::builder()
            .seed(7)
            .network(NetworkConfig::constant(VirtualDuration::from_millis(10)))
            .build();
        let server = env.spawn_user("echo", |ctx| {
            RpcServer::serve(ctx, |_ctx, _m, body| body.clone());
        });
        env.spawn_user("client", move |ctx| {
            let mut value = 1u8;
            for _ in 0..4 {
                if streamed {
                    let p = StreamingClient::call(
                        ctx,
                        server,
                        0,
                        Bytes::from(vec![value]),
                        Bytes::from(vec![value]), // echo: perfectly predictable
                    );
                    let (r, _) = p.redeem(ctx);
                    value = r[0];
                } else {
                    let r = RpcClient::call(ctx, server, 0, Bytes::from(vec![value]));
                    value = r[0];
                }
            }
            if ctx.current_deps().is_empty() {
                // Only stop the server from a definite interval: a
                // speculative stop could race the WorryWarts' requests.
                RpcServer::stop(ctx, server);
            }
        });
        let report = env.run();
        assert!(report.is_clean(), "{:?}", report.run.panics);
        report.run.now
    }
    let sync_time = run(false);
    let stream_time = run(true);
    assert!(
        sync_time.as_nanos() >= 4 * 20_000_000,
        "sync pays 4 round trips: {sync_time}"
    );
    assert!(
        stream_time.as_nanos() < sync_time.as_nanos() / 2,
        "streaming must at least halve the total: {stream_time} vs {sync_time}"
    );
}

//! Tests for `StreamingClient::call_with_order` — the generic form of the
//! paper's §3.1 `Order` assumption — plus wire-level robustness.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{RpcClient, RpcServer, StreamingClient, CHANNEL_REQUEST};
use hope_types::{Payload, UserMessage, VirtualDuration};

/// A stateful sequence server: replies with a running counter, so reply
/// values expose the order in which requests were served.
fn spawn_sequencer(env: &mut HopeEnv) -> hope_types::ProcessId {
    env.spawn_user("sequencer", |ctx| {
        let mut count = 0u8;
        RpcServer::serve(ctx, move |_ctx, _method, _body| {
            count += 1;
            Bytes::from(vec![count])
        });
    })
}

#[test]
fn ordered_call_confirms_when_no_later_traffic_races() {
    let mut env = HopeEnv::builder().seed(1).build();
    let server = spawn_sequencer(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let order = ctx.aid_init();
        let promise = StreamingClient::call_with_order(
            ctx,
            server,
            0,
            Bytes::new(),
            Bytes::from_static(&[1]), // first request → counter 1
            order,
        );
        // Local work instead of racing traffic.
        ctx.compute(VirtualDuration::from_millis(1));
        let (reply, predicted) = promise.redeem(ctx);
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some((reply[0], predicted));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (value, predicted) = out.lock().unwrap().unwrap();
    assert_eq!(value, 1);
    assert!(predicted);
}

#[test]
fn ordered_call_repairs_an_overtaking_request() {
    // The client issues an ordered streamed call, then *immediately*
    // (zero local work) fires a second call to the same server while
    // depending on `order`. With zero-cost primitives the second request
    // overtakes the WorryWart's first one; free_of(Order) detects the
    // violation and the retry serializes them — final replies must read
    // 1 then 2 in program order.
    let mut env = HopeEnv::builder().seed(2).build();
    let server = spawn_sequencer(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        let order = ctx.aid_init();
        let first = StreamingClient::call_with_order(
            ctx,
            server,
            0,
            Bytes::new(),
            Bytes::from_static(&[1]),
            order,
        );
        // Become dependent on Order, then race the verification call.
        let _ = ctx.guess(order);
        let second = RpcClient::call(ctx, server, 0, Bytes::new());
        let (first_reply, _) = first.redeem(ctx);
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some((first_reply[0], second[0]));
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (first, second) = out.lock().unwrap().unwrap();
    assert_eq!(
        (first, second),
        (1, 2),
        "program order must win after the causality repair"
    );
    assert!(
        report.hope.rollbacks >= 1,
        "the overtaking must have been detected and repaired"
    );
}

#[test]
fn malformed_request_frames_are_dropped_by_servers() {
    let mut env = HopeEnv::builder().seed(3).build();
    let server = spawn_sequencer(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        // A junk frame straight onto the request channel…
        ctx.send(server, CHANNEL_REQUEST, Bytes::from_static(b"xx"));
        // …must not kill or confuse the server.
        let reply = RpcClient::call(ctx, server, 0, Bytes::new());
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some(reply[0]);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_eq!(
        out.lock().unwrap().unwrap(),
        1,
        "junk did not consume a slot"
    );
}

#[test]
fn non_request_user_messages_do_not_disturb_servers() {
    // Messages on other channels queue harmlessly past a serving loop.
    let mut env = HopeEnv::builder().seed(4).build();
    let server = spawn_sequencer(&mut env);
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    env.spawn_user("client", move |ctx| {
        ctx.send(server, 12345, Bytes::from_static(b"not an rpc"));
        let reply = RpcClient::call(ctx, server, 0, Bytes::new());
        if !ctx.is_replaying() {
            *o.lock().unwrap() = Some(reply[0]);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert_eq!(out.lock().unwrap().unwrap(), 1);
}

#[test]
fn raw_envelope_injection_reaches_servers() {
    // Cover SimRuntime::inject as an open-loop request source.
    let mut env = HopeEnv::builder().seed(5).build();
    let counter = Arc::new(Mutex::new(0u32));
    let c = counter.clone();
    let sink = env.spawn_user("sink", move |ctx| {
        let _ = ctx.receive(None);
        if !ctx.is_replaying() {
            *c.lock().unwrap() += 1;
        }
    });
    let src = hope_types::ProcessId::from_raw(9999);
    env.runtime_mut()
        .inject(
            src,
            sink,
            Payload::User(UserMessage::new(0, Bytes::from_static(b"outside"))),
        )
        .unwrap();
    let report = env.run();
    assert!(report.is_clean());
    assert_eq!(*counter.lock().unwrap(), 1);
}

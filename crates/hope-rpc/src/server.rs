//! RPC server loop.

use bytes::Bytes;
use hope_core::ProcessCtx;
use hope_types::ProcessId;

use crate::wire::{decode_request, encode_request, Request, CHANNEL_REQUEST, METHOD_STOP};

/// Helpers for writing RPC server processes.
///
/// A server is an ordinary HOPE user process whose body calls
/// [`RpcServer::serve`] with a handler. Because requests arrive as tagged
/// messages, handling a speculative request makes the server speculative;
/// HOPE rolls it back (re-executing the loop deterministically) if the
/// speculation dies. Server-local state therefore belongs *inside* the
/// body closure, where replay rebuilds it faithfully.
#[derive(Debug, Clone, Copy)]
pub struct RpcServer;

impl RpcServer {
    /// Runs the request loop until a [`METHOD_STOP`] request arrives.
    ///
    /// The handler receives the context (for `compute`, nested calls or
    /// further HOPE primitives), the method id and the request body, and
    /// returns the reply payload.
    pub fn serve<F>(ctx: &mut ProcessCtx<'_>, mut handler: F)
    where
        F: FnMut(&mut ProcessCtx<'_>, u32, &Bytes) -> Bytes,
    {
        loop {
            let delivery = ctx.receive(Some(CHANNEL_REQUEST));
            let Some(Request {
                method,
                reply_channel,
                body,
            }) = decode_request(&delivery.data)
            else {
                continue; // malformed frame: drop
            };
            if method == METHOD_STOP {
                return;
            }
            let reply = handler(ctx, method, &body);
            ctx.send(delivery.src, reply_channel, reply);
        }
    }

    /// Sends the stop request that makes [`RpcServer::serve`] return.
    pub fn stop(ctx: &mut ProcessCtx<'_>, server: ProcessId) {
        ctx.send(server, CHANNEL_REQUEST, encode_request(METHOD_STOP, 0, b""));
    }
}

//! # hope-rpc — RPC and optimistic call streaming
//!
//! The HOPE paper's motivating example (§3.1) is remote procedure call
//! latency: "a 100 MIPS CPU can execute over 3 million instructions while
//! waiting for a response from the opposite coast". This crate provides
//! both sides of that comparison on top of [`hope_core`]:
//!
//! * [`RpcClient::call`] — ordinary **synchronous RPC**: send the request,
//!   block for the reply, pay the full round trip (the paper's Figure 1).
//! * [`StreamingClient::call`] — **optimistic call streaming** (the
//!   paper's Figure 2, after Bacon & Strom): send the request, *predict*
//!   the reply, and keep computing speculatively. A spawned *WorryWart*
//!   process performs the real call and `affirm`s or `deny`s the
//!   prediction; a wrong prediction rolls the caller back to the
//!   [`ReplyPromise::redeem`] point, where the true reply is used instead.
//!
//! Servers are ordinary HOPE processes ([`RpcServer::serve`]); because
//! requests carry dependency tags, a server that handles a speculative
//! request becomes speculative itself and is rolled back automatically if
//! the speculation dies — no server code is aware of any of this.
//!
//! # Examples
//!
//! A squaring server called both ways:
//!
//! ```
//! use bytes::Bytes;
//! use hope_core::HopeEnv;
//! use hope_rpc::{RpcClient, RpcServer, StreamingClient};
//! use std::sync::{Arc, Mutex};
//!
//! let mut env = HopeEnv::builder().seed(9).build();
//! let server = env.spawn_user("squarer", |ctx| {
//!     RpcServer::serve(ctx, |_ctx, _method, body| {
//!         let x = body[0] as u16;
//!         Bytes::from(vec![(x * x) as u8])
//!     });
//! });
//! let results = Arc::new(Mutex::new(Vec::new()));
//! let out = results.clone();
//! env.spawn_user("client", move |ctx| {
//!     // Synchronous: waits a full round trip.
//!     let r = RpcClient::call(ctx, server, 0, Bytes::from_static(&[3]));
//!     out.lock().unwrap().push(r[0]);
//!     // Streaming with a correct prediction: no waiting at all.
//!     let promise = StreamingClient::call(
//!         ctx, server, 0, Bytes::from_static(&[4]), Bytes::from_static(&[16]));
//!     let (reply, predicted) = promise.redeem(ctx);
//!     assert!(predicted);
//!     out.lock().unwrap().push(reply[0]);
//!     RpcServer::stop(ctx, server);
//! });
//! let report = env.run();
//! assert!(report.is_clean());
//! assert_eq!(results.lock().unwrap().as_slice(), &[9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod predictor;
mod server;
mod streaming;
mod wire;

pub use client::RpcClient;
pub use predictor::{
    CallOutcome, ConstantPredictor, FunctionPredictor, LastValuePredictor, PredictiveClient,
    Predictor,
};
pub use server::RpcServer;
pub use streaming::{ReplyPromise, StreamingClient};
pub use wire::{Request, CHANNEL_REQUEST, METHOD_STOP};

//! Optimistic call streaming — the paper's Figure 2.
//!
//! `StreamingClient::call` transforms a synchronous RPC into the paper's
//! Worker/WorryWart pair:
//!
//! * the **caller** (Worker) gets a [`ReplyPromise`] immediately and keeps
//!   computing; [`ReplyPromise::redeem`] `guess`es the prediction and
//!   returns the predicted reply without waiting;
//! * a spawned **WorryWart** process performs the real synchronous call,
//!   forwards the true reply to the caller, and `affirm`s the prediction
//!   if it matched or `deny`s it otherwise — rolling the caller (and every
//!   transitive dependent) back to the `redeem` point, where the true
//!   reply is consumed instead.
//!
//! [`StreamingClient::call_with_order`] adds the paper's *Order*
//! assumption: when the caller keeps talking to the same server while the
//! WorryWart's call is in flight, the WorryWart executes
//! `free_of(order)` to detect the §3.1 causality violation (a later
//! message overtaking the verified call) and force corrective rollbacks.

use bytes::Bytes;
use hope_core::ProcessCtx;
use hope_types::{AidId, ProcessId};

use crate::client::{fresh_reply_channel, RpcClient};

/// Issues optimistic streamed calls. See the crate docs for the model.
#[derive(Debug, Clone, Copy)]
pub struct StreamingClient;

/// The pending result of a streamed call. Redeem it where the value is
/// needed; everything between the call and the redeem runs in parallel
/// with the network round trip.
#[derive(Debug)]
#[must_use = "a streamed call does nothing until redeemed"]
pub struct ReplyPromise {
    aid: AidId,
    reply_channel: u32,
    predicted: Bytes,
}

impl StreamingClient {
    /// Streams a call: returns immediately with a [`ReplyPromise`] for
    /// `predicted`. A WorryWart process verifies the prediction against
    /// the real reply.
    pub fn call(
        ctx: &mut ProcessCtx<'_>,
        server: ProcessId,
        method: u32,
        body: Bytes,
        predicted: Bytes,
    ) -> ReplyPromise {
        Self::spawn_worrywart(ctx, server, method, body, predicted, None)
    }

    /// Streams a call that must stay *ordered* with respect to later
    /// traffic the caller sends to the same server. The caller should
    /// `guess(order)` before issuing any such later traffic (tagging it),
    /// and the WorryWart will `free_of(order)` after its verification call
    /// — denying `order` (and rolling the overtaking traffic back) if the
    /// causality violation of §3.1 occurred.
    pub fn call_with_order(
        ctx: &mut ProcessCtx<'_>,
        server: ProcessId,
        method: u32,
        body: Bytes,
        predicted: Bytes,
        order: AidId,
    ) -> ReplyPromise {
        Self::spawn_worrywart(ctx, server, method, body, predicted, Some(order))
    }

    fn spawn_worrywart(
        ctx: &mut ProcessCtx<'_>,
        server: ProcessId,
        method: u32,
        body: Bytes,
        predicted: Bytes,
        order: Option<AidId>,
    ) -> ReplyPromise {
        let aid = ctx.aid_init();
        let reply_channel = fresh_reply_channel(ctx);
        let caller = ctx.pid();
        let expected = predicted.clone();
        ctx.spawn_user("worrywart", move |wctx| {
            let reply = RpcClient::call(wctx, server, method, body.clone());
            // Forward the true reply for the caller's pessimistic path.
            // If our call was answered speculatively, the forward carries
            // our dependency tag, keeping the caller's rollback chain
            // intact transitively.
            wctx.send(caller, reply_channel, reply.clone());
            if let Some(order) = order {
                // §3.1: did a later message overtake our call at the
                // server? free_of denies `order` if we picked up a
                // dependency on it through the reply.
                let _ = wctx.free_of(order);
            }
            if reply == expected {
                wctx.affirm(aid);
            } else {
                wctx.deny(aid);
            }
        });
        ReplyPromise {
            aid,
            reply_channel,
            predicted,
        }
    }
}

impl ReplyPromise {
    /// The assumption identifier guarding this prediction (exposed so
    /// callers can build further HOPE logic on it).
    pub fn aid(&self) -> AidId {
        self.aid
    }

    /// Consumes the promise where the reply value is needed.
    ///
    /// Optimistically returns `(predicted, true)` at once. If the
    /// WorryWart later denies the prediction, the caller rolls back to
    /// this point and the call instead blocks for the true reply,
    /// returning `(actual, false)`.
    pub fn redeem(self, ctx: &mut ProcessCtx<'_>) -> (Bytes, bool) {
        if ctx.guess(self.aid) {
            (self.predicted, true)
        } else {
            let delivery = ctx.receive(Some(self.reply_channel));
            (delivery.data, false)
        }
    }

    /// Like [`ReplyPromise::redeem`], but never uses the prediction: waits
    /// for the true reply (useful as a pessimistic control in benchmarks).
    pub fn redeem_actual(self, ctx: &mut ProcessCtx<'_>) -> Bytes {
        let delivery = ctx.receive(Some(self.reply_channel));
        delivery.data
    }
}

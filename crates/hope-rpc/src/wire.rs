//! Wire format: a tiny self-describing header in front of the payload.
//!
//! Requests travel on [`CHANNEL_REQUEST`]; each request names the channel
//! its reply should be sent back on, which lets a client hold several
//! outstanding streamed calls at once.

use bytes::{BufMut, Bytes, BytesMut};

/// The channel RPC servers listen on.
pub const CHANNEL_REQUEST: u32 = 0x5250_4300; // "RPC\0"

/// Reserved method id that makes [`RpcServer::serve`](crate::RpcServer)
/// return (used to let closed workloads reach quiescence).
pub const METHOD_STOP: u32 = u32::MAX;

/// A decoded RPC request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Application-chosen method id.
    pub method: u32,
    /// Channel the reply must be sent on.
    pub reply_channel: u32,
    /// Argument payload.
    pub body: Bytes,
}

/// Encodes a request frame.
pub fn encode_request(method: u32, reply_channel: u32, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(8 + body.len());
    out.put_u32_le(method);
    out.put_u32_le(reply_channel);
    out.put_slice(body);
    out.freeze()
}

/// Decodes a request frame. Returns `None` on malformed input.
pub fn decode_request(data: &Bytes) -> Option<Request> {
    if data.len() < 8 {
        return None;
    }
    let method = u32::from_le_bytes(data[0..4].try_into().ok()?);
    let reply_channel = u32::from_le_bytes(data[4..8].try_into().ok()?);
    Some(Request {
        method,
        reply_channel,
        body: data.slice(8..),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let frame = encode_request(7, 99, b"hello");
        let req = decode_request(&frame).unwrap();
        assert_eq!(req.method, 7);
        assert_eq!(req.reply_channel, 99);
        assert_eq!(&req.body[..], b"hello");
    }

    #[test]
    fn empty_body_roundtrip() {
        let frame = encode_request(0, 1, b"");
        let req = decode_request(&frame).unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn short_frame_is_rejected() {
        assert!(decode_request(&Bytes::from_static(b"xx")).is_none());
        assert!(decode_request(&Bytes::new()).is_none());
    }

    #[test]
    fn header_is_little_endian() {
        let frame = encode_request(0x0102_0304, 0x0a0b_0c0d, b"");
        assert_eq!(&frame[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(&frame[4..8], &[0x0d, 0x0c, 0x0b, 0x0a]);
    }
}

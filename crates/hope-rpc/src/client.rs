//! Synchronous RPC — the baseline the paper's optimism beats.

use bytes::Bytes;
use hope_core::ProcessCtx;
use hope_types::ProcessId;

use crate::wire::{encode_request, CHANNEL_REQUEST};

/// Synchronous remote procedure calls (the paper's Figure 1 behaviour:
/// "the calling process is idle until it gets a response").
#[derive(Debug, Clone, Copy)]
pub struct RpcClient;

impl RpcClient {
    /// Calls `method` on `server` and blocks until the reply arrives,
    /// paying the full network round trip plus service time.
    pub fn call(ctx: &mut ProcessCtx<'_>, server: ProcessId, method: u32, body: Bytes) -> Bytes {
        let reply_channel = fresh_reply_channel(ctx);
        ctx.send(
            server,
            CHANNEL_REQUEST,
            encode_request(method, reply_channel, &body),
        );
        let reply = ctx.receive(Some(reply_channel));
        reply.data
    }
}

/// Allocates a reply channel in the private range. Drawn through the
/// context's logged randomness, so it is stable across rollback replay.
pub(crate) fn fresh_reply_channel(ctx: &mut ProcessCtx<'_>) -> u32 {
    0x8000_0000 | (ctx.random() as u32 & 0x7fff_ffff)
}

//! Synchronous RPC — the baseline the paper's optimism beats.

use bytes::Bytes;
use hope_core::ProcessCtx;
use hope_types::ProcessId;

use crate::wire::{encode_request, CHANNEL_REQUEST};

/// Synchronous remote procedure calls (the paper's Figure 1 behaviour:
/// "the calling process is idle until it gets a response").
#[derive(Debug, Clone, Copy)]
pub struct RpcClient;

impl RpcClient {
    /// Calls `method` on `server` and blocks until the reply arrives,
    /// paying the full network round trip plus service time.
    pub fn call(ctx: &mut ProcessCtx<'_>, server: ProcessId, method: u32, body: Bytes) -> Bytes {
        let reply_channel = fresh_reply_channel(ctx);
        ctx.send(
            server,
            CHANNEL_REQUEST,
            encode_request(method, reply_channel, &body),
        );
        let reply = ctx.receive(Some(reply_channel));
        reply.data
    }
}

/// Allocates a reply channel in the private range (high bit set, so it
/// can never shadow an application channel). Derived from the context's
/// logged channel sequence rather than randomness: random draws could
/// collide between two in-flight calls from the same client,
/// cross-wiring their replies. Replay after a rollback returns the
/// logged values, so a call redeemed before the boundary still matches
/// its reply — while a call *re-issued* past the boundary draws from a
/// counter that never rewinds, so a stale reply addressed to a discarded
/// execution's channel cannot be consumed by the new call.
pub(crate) fn fresh_reply_channel(ctx: &mut ProcessCtx<'_>) -> u32 {
    0x8000_0000 | (ctx.channel_seq() & 0x7fff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::HopeEnv;
    use std::sync::{Arc, Mutex};

    /// Regression for the random-draw allocator: channels from one client
    /// must be pairwise distinct (random 31-bit draws could alias two
    /// in-flight calls) and keep the private-range high bit.
    #[test]
    fn reply_channels_are_distinct_and_namespaced() {
        let mut env = HopeEnv::builder().seed(11).build();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let out = seen.clone();
        env.spawn_user("client", move |ctx| {
            let channels: Vec<u32> = (0..64).map(|_| fresh_reply_channel(ctx)).collect();
            *out.lock().unwrap() = channels;
        });
        let report = env.run();
        assert!(report.is_clean(), "{:?}", report.run.panics);
        let channels = seen.lock().unwrap().clone();
        assert_eq!(channels.len(), 64);
        for (i, &c) in channels.iter().enumerate() {
            assert!(c & 0x8000_0000 != 0, "channel {c:#x} escaped the range");
            assert!(
                !channels[..i].contains(&c),
                "channel {c:#x} allocated twice"
            );
        }
    }

    /// The allocator must hand the re-execution of a rolled-back body the
    /// same channels it handed the optimistic run, or the replayed
    /// `receive(Some(channel))` would wait on the wrong mailbox filter.
    #[test]
    fn reply_channels_are_stable_across_replay() {
        let mut env = HopeEnv::builder().seed(12).build();
        let per_execution = Arc::new(Mutex::new(Vec::<Vec<u32>>::new()));
        let out = per_execution.clone();
        env.spawn_user("client", move |ctx| {
            let channels: Vec<u32> = (0..8).map(|_| fresh_reply_channel(ctx)).collect();
            out.lock().unwrap().push(channels);
            // Force a rollback: guess, then deny our own assumption.
            let aid = ctx.aid_init();
            if ctx.guess(aid) {
                ctx.deny(aid);
            }
        });
        let report = env.run();
        assert!(report.is_clean(), "{:?}", report.run.panics);
        let executions = per_execution.lock().unwrap().clone();
        assert!(executions.len() >= 2, "the deny must force a re-execution");
        for exec in &executions[1..] {
            assert_eq!(*exec, executions[0], "replay diverged");
        }
    }
}

//! Reply predictors for call streaming.
//!
//! Call streaming needs a *prediction* of the reply; the paper leaves the
//! verification criterion — and therefore the prediction source — entirely
//! to the programmer ("any user-programmed criteria", selectable at run
//! time). This module provides the common strategies:
//!
//! * [`ConstantPredictor`] — always predict a fixed value (e.g. "ok"),
//! * [`LastValuePredictor`] — predict whatever the same method returned
//!   last time (temporal locality, the classic RPC-result cache),
//! * [`FunctionPredictor`] — compute the prediction from the request (an
//!   application-provided model of the server).
//!
//! [`PredictiveClient::call`] ties a predictor to the streaming client:
//! with a prediction available it streams (wait-free); without one it
//! falls back to a synchronous call and feeds the observation back.
//!
//! Predictor state lives *inside* the process body, so rollback re-
//! execution rebuilds it deterministically like any other local state.

use bytes::Bytes;
use hope_core::ProcessCtx;
use hope_types::ProcessId;
use std::collections::BTreeMap;

use crate::client::RpcClient;
use crate::streaming::{ReplyPromise, StreamingClient};

/// A source of reply predictions.
///
/// `predict` may decline (return `None`), in which case the caller pays
/// the synchronous round trip; `observe` feeds actual replies back so the
/// predictor can learn.
pub trait Predictor {
    /// Predicts the reply for `method(body)`, or `None` to decline.
    fn predict(&mut self, method: u32, body: &Bytes) -> Option<Bytes>;

    /// Records an actual reply for future predictions.
    fn observe(&mut self, method: u32, body: &Bytes, reply: &Bytes);
}

/// Always predicts the same value — ideal for calls whose reply is almost
/// always a fixed acknowledgement.
#[derive(Debug, Clone)]
pub struct ConstantPredictor {
    value: Bytes,
}

impl ConstantPredictor {
    /// Predict `value` for every call.
    pub fn new(value: Bytes) -> Self {
        ConstantPredictor { value }
    }
}

impl Predictor for ConstantPredictor {
    fn predict(&mut self, _method: u32, _body: &Bytes) -> Option<Bytes> {
        Some(self.value.clone())
    }
    fn observe(&mut self, _method: u32, _body: &Bytes, _reply: &Bytes) {}
}

/// Predicts the reply most recently observed for the same method
/// (ignoring the body). Declines until it has seen one reply.
///
/// Backed by a `BTreeMap` so the cache has a deterministic shape: the
/// predictor lives inside a process body and is rebuilt by rollback
/// re-execution, where any iteration-order dependence would diverge.
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    last: BTreeMap<u32, Bytes>,
}

impl LastValuePredictor {
    /// An empty cache.
    pub fn new() -> Self {
        LastValuePredictor::default()
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&mut self, method: u32, _body: &Bytes) -> Option<Bytes> {
        self.last.get(&method).cloned()
    }
    fn observe(&mut self, method: u32, _body: &Bytes, reply: &Bytes) {
        self.last.insert(method, reply.clone());
    }
}

/// Predicts by running an application-supplied model of the server.
pub struct FunctionPredictor<F> {
    f: F,
}

impl<F> FunctionPredictor<F>
where
    F: FnMut(u32, &Bytes) -> Option<Bytes>,
{
    /// Wraps the model function.
    pub fn new(f: F) -> Self {
        FunctionPredictor { f }
    }
}

impl<F> Predictor for FunctionPredictor<F>
where
    F: FnMut(u32, &Bytes) -> Option<Bytes>,
{
    fn predict(&mut self, method: u32, body: &Bytes) -> Option<Bytes> {
        (self.f)(method, body)
    }
    fn observe(&mut self, _method: u32, _body: &Bytes, _reply: &Bytes) {}
}

/// A client that streams when its predictor offers a prediction and falls
/// back to synchronous RPC when it declines, feeding observations back
/// either way.
pub struct PredictiveClient<P> {
    server: ProcessId,
    predictor: P,
}

/// What a [`PredictiveClient::call`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// The call streamed and the prediction held: no waiting at all.
    Predicted,
    /// The call streamed but the prediction was wrong: rolled back, paid
    /// the round trip after all.
    Mispredicted,
    /// The predictor declined; a synchronous call was made.
    Synchronous,
}

impl<P: Predictor> PredictiveClient<P> {
    /// Binds a predictor to a server.
    pub fn new(server: ProcessId, predictor: P) -> Self {
        PredictiveClient { server, predictor }
    }

    /// Access to the predictor (e.g. to pre-seed caches).
    pub fn predictor_mut(&mut self) -> &mut P {
        &mut self.predictor
    }

    /// Calls `method(body)`, streaming when possible.
    pub fn call(
        &mut self,
        ctx: &mut ProcessCtx<'_>,
        method: u32,
        body: Bytes,
    ) -> (Bytes, CallOutcome) {
        match self.predictor.predict(method, &body) {
            Some(predicted) => {
                let promise: ReplyPromise =
                    StreamingClient::call(ctx, self.server, method, body.clone(), predicted);
                let (reply, was_predicted) = promise.redeem(ctx);
                self.predictor.observe(method, &body, &reply);
                let outcome = if was_predicted {
                    CallOutcome::Predicted
                } else {
                    CallOutcome::Mispredicted
                };
                (reply, outcome)
            }
            None => {
                let reply = RpcClient::call(ctx, self.server, method, body.clone());
                self.predictor.observe(method, &body, &reply);
                (reply, CallOutcome::Synchronous)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_predictor_always_predicts() {
        let mut p = ConstantPredictor::new(Bytes::from_static(b"ok"));
        assert_eq!(p.predict(1, &Bytes::new()), Some(Bytes::from_static(b"ok")));
        p.observe(1, &Bytes::new(), &Bytes::from_static(b"other"));
        assert_eq!(
            p.predict(1, &Bytes::new()),
            Some(Bytes::from_static(b"ok")),
            "constant ignores observations"
        );
    }

    #[test]
    fn last_value_predictor_learns_per_method() {
        let mut p = LastValuePredictor::new();
        assert_eq!(p.predict(1, &Bytes::new()), None, "declines when cold");
        p.observe(1, &Bytes::new(), &Bytes::from_static(b"a"));
        p.observe(2, &Bytes::new(), &Bytes::from_static(b"b"));
        assert_eq!(p.predict(1, &Bytes::new()), Some(Bytes::from_static(b"a")));
        assert_eq!(p.predict(2, &Bytes::new()), Some(Bytes::from_static(b"b")));
        p.observe(1, &Bytes::new(), &Bytes::from_static(b"a2"));
        assert_eq!(p.predict(1, &Bytes::new()), Some(Bytes::from_static(b"a2")));
    }

    #[test]
    fn function_predictor_models_the_server() {
        let mut p = FunctionPredictor::new(|method, body: &Bytes| {
            if method == 7 {
                Some(Bytes::from(vec![body[0] * 2]))
            } else {
                None
            }
        });
        assert_eq!(
            p.predict(7, &Bytes::from_static(&[21])),
            Some(Bytes::from_static(&[42]))
        );
        assert_eq!(p.predict(8, &Bytes::from_static(&[21])), None);
    }
}

//! # hope-sim — workloads and the experiment harness
//!
//! One module per experiment of DESIGN.md's index, each exposing a config
//! struct and a `run` function returning a plain result struct, plus
//! [`table::Table`] for printing paper-style rows:
//!
//! | Module | Experiment | Paper artefact |
//! |--------|-----------|----------------|
//! | [`printer`]    | F1/F2 | Figures 1–2: the print-server call-streaming transformation |
//! | [`chain`]      | E3    | the "up to 70 % RPC improvement" claim (companion paper \[11\]) |
//! | [`waitfree`]   | E4    | §5's wait-free design criterion |
//! | [`quadratic`]  | E5    | §6's "quadratic in the number of intervals and AIDs" |
//! | [`rings`]      | F13/F14 | interference cycles and Algorithm 2's detection |
//! | [`rollback`]   | E6    | rollback/replay cost vs. speculation depth |
//! | [`scientific`] | E7    | optimistic convergence detection (\[6\]: scientific programming) |
//! | [`replication`] | E8   | optimistic replication conflict churn (\[5\]) |
//! | [`soak`]       | E9    | mixed load: latency percentiles under rollback pressure |
//! | [`protocol`]   | T1    | Table 1 message accounting |
//! | [`chaos`]      | E-chaos | fault injection: safety invariants under drop/dup/crash |
//! | [`contention`] | E-adaptive | adaptive speculation control under configurable deny rates |
//! | [`disk_chaos`] | E-disk  | durable op-log recovery under crashes with storage faults |
//! | [`netchaos`]   | E-net   | socket-level chaos proxy: partitions, resets, mid-frame cuts against the real TCP transport |
//! | [`scenarios`]  | E-check | zero-latency scenario builders for the `hope-check` model checker |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod chaos;
pub mod contention;
pub mod disk_chaos;
pub mod json;
pub mod netchaos;
pub mod printer;
pub mod protocol;
pub mod quadratic;
pub mod replication;
pub mod rings;
pub mod rollback;
pub mod scenarios;
pub mod scientific;
pub mod soak;
pub mod table;
pub mod trace_export;
pub mod waitfree;

//! T1 — Table 1 message accounting from a live run.
//!
//! A canonical program exercising all five protocol messages (an affirmed
//! guess, a denied guess, and a speculative affirm chain), measured by the
//! runtime's per-(type, from, to) counters and printed in the layout of
//! the paper's Table 1.

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_runtime::{MessageStats, NetworkConfig, PartyKind};
use hope_types::{AidId, ProcessId, VirtualDuration};

fn encode_aids(aids: &[AidId]) -> Bytes {
    let mut out = Vec::with_capacity(aids.len() * 8);
    for aid in aids {
        out.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_aids(data: &[u8]) -> Vec<AidId> {
    data.chunks_exact(8)
        .map(|c| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(c);
            AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(raw)))
        })
        .collect()
}

/// Runs the canonical protocol workload and returns the message counters.
pub fn run_canonical(seed: u64) -> MessageStats {
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::lan())
        .build();
    let verifier = env.spawn_user("verifier", move |ctx| {
        let m = ctx.receive(None);
        let aids = decode_aids(&m.data);
        ctx.compute(VirtualDuration::from_millis(1));
        ctx.affirm(aids[0]); // resolves the optimistic guess
        ctx.deny(aids[1]); // forces a rollback
        ctx.affirm(aids[2]); // resolves the post-rollback re-guess chain
    });
    env.spawn_user("guesser", move |ctx| {
        let a = ctx.aid_init();
        let b = ctx.aid_init();
        let c = ctx.aid_init();
        ctx.send(verifier, 0, encode_aids(&[a, b, c]));
        if ctx.guess(a) {
            // Speculative affirm: exercises Affirm with a non-empty IDO.
            if ctx.guess(c) {
                ctx.compute(VirtualDuration::from_micros(100));
            }
        }
        if ctx.guess(b) {
            ctx.compute(VirtualDuration::from_millis(5));
        }
    });
    let report = env.run();
    assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
    report.run.stats
}

/// Formats message counters in the paper's Table 1 layout.
pub fn table_1(stats: &MessageStats) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "Table 1: basic HOPE messages (live counts from the canonical run)",
        &["Type", "From", "To", "Meaning", "Count"],
    );
    let rows: [(&str, PartyKind, PartyKind, &str); 5] = [
        (
            "Guess",
            PartyKind::User,
            PartyKind::Aid,
            "sender guesses AID is true",
        ),
        (
            "Affirm",
            PartyKind::User,
            PartyKind::Aid,
            "sender affirms AID, subject to IDO",
        ),
        (
            "Deny",
            PartyKind::User,
            PartyKind::Aid,
            "sender denies AID unconditionally",
        ),
        (
            "Replace",
            PartyKind::Aid,
            PartyKind::User,
            "replace sender with IDO in iid.IDO",
        ),
        (
            "Rollback",
            PartyKind::Aid,
            PartyKind::User,
            "rollback interval iid",
        ),
    ];
    for (kind, from, to, meaning) in rows {
        table.row(&[
            kind.to_string(),
            from.to_string(),
            to.to_string(),
            meaning.to_string(),
            stats.count(kind, from, to).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_run_exercises_all_five_message_types() {
        let stats = run_canonical(1);
        for kind in ["Guess", "Affirm", "Deny", "Replace", "Rollback"] {
            assert!(
                stats.count_kind(kind) > 0,
                "message type {kind} must appear in the canonical run"
            );
        }
    }

    #[test]
    fn directions_match_table_1() {
        let stats = run_canonical(1);
        // Guess/Affirm/Deny flow User→AID; Replace/Rollback flow AID→User.
        assert_eq!(stats.count("Guess", PartyKind::Aid, PartyKind::User), 0);
        assert_eq!(stats.count("Replace", PartyKind::User, PartyKind::Aid), 0);
        assert_eq!(stats.count("Rollback", PartyKind::User, PartyKind::Aid), 0);
        assert!(stats.count("Guess", PartyKind::User, PartyKind::Aid) > 0);
        assert!(stats.count("Replace", PartyKind::Aid, PartyKind::User) > 0);
    }

    #[test]
    fn table_has_five_rows_with_counts() {
        let stats = run_canonical(1);
        let t = table_1(&stats);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let count: u64 = row[4].parse().unwrap();
            assert!(count > 0, "row {row:?} must have a non-zero count");
        }
    }
}

//! E-adaptive — speculation under contention: optimistic workers against
//! a resolver that denies a configurable fraction of their assumptions.
//!
//! The workload that motivates DESIGN.md §9's adaptive speculation
//! control. `workers` processes each run `rounds` of: create an AID, ask
//! the resolver to validate it, **guess** it, and do heavy chunked work
//! on the optimistic branch (streaming tagged progress messages to the
//! resolver) or cheap fallback work on the pessimistic branch. The
//! resolver affirms or denies each request by a deterministic per-seed
//! hash, so the deny rate is exact and reproducible.
//!
//! At low deny rates unconditional optimism wins: the heavy work
//! overlaps the validation round trip. At high deny rates it loses
//! badly — every denied round burns the full heavy compute before the
//! deny lands, and every tagged progress message doomed by the deny
//! rolls the resolver back again. [`SpecPolicy::Adaptive`] should track
//! the optimistic throughput when denies are rare and approach the
//! pessimistic (wait-for-the-definite-value) throughput when they are
//! common, while doomed-interval cancellation absorbs the tainted
//! progress stream. `hope-bench --bin adaptive` sweeps the deny rate
//! over this workload and gates those ratios in CI.

use bytes::Bytes;

use hope_core::{HopeEnv, SpecPolicy};
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

/// Request channel: `(worker, round, aid)` triples for the resolver.
const CH_REQUEST: u32 = 0;
/// Progress channel: speculative streaming updates (tag is the payload).
const CH_PROGRESS: u32 = 1;
/// Done channel: a worker finished all rounds and went definite.
const CH_DONE: u32 = 2;

/// Parameters of one contention run.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// Speculating worker processes.
    pub workers: u32,
    /// Rounds (one AID + one guess) per worker.
    pub rounds: u32,
    /// Fraction of requests the resolver denies, in permille (0..=1000).
    pub deny_permille: u32,
    /// Heavy-work chunks per optimistic round (one tagged progress
    /// message is streamed after each chunk).
    pub chunks: u32,
    /// Virtual compute per heavy chunk.
    pub chunk: VirtualDuration,
    /// Virtual compute of the pessimistic fallback branch.
    pub light: VirtualDuration,
    /// One-way wire latency.
    pub latency: VirtualDuration,
    /// Speculation-control policy for every process in the run.
    pub policy: SpecPolicy,
    /// Seed for the runtime and the deny hash.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            workers: 4,
            rounds: 100,
            deny_permille: 300,
            chunks: 40,
            chunk: VirtualDuration::from_nanos(500_000),
            light: VirtualDuration::from_nanos(500_000),
            latency: VirtualDuration::from_millis(1),
            policy: SpecPolicy::AlwaysOptimistic,
            seed: 0,
        }
    }
}

/// Measured outcome of one contention run.
#[derive(Debug, Clone, Copy)]
pub struct ContentionResult {
    /// Rounds committed (always `workers * rounds`: every round resolves).
    pub committed_rounds: u64,
    /// Rounds the resolver denied (exact, from the deny hash).
    pub denied_rounds: u64,
    /// Virtual time at quiescence.
    pub quiescent: VirtualTime,
    /// Committed rounds per virtual second.
    pub throughput: f64,
    /// Intervals rolled back across all processes.
    pub rollbacks: u64,
    /// Doomed intervals proactively cancelled (0 under
    /// [`SpecPolicy::AlwaysOptimistic`]).
    pub cancelled_intervals: u64,
    /// Operations discarded by rollbacks (wasted work).
    pub wasted_ops: u64,
}

/// The deterministic deny decision for `(worker, round)`: a splitmix64
/// finalizer over the seed and coordinates, reduced to permille. Workers
/// and the resolver never communicate about it — the resolver computes
/// it on receipt, tests and reports recompute it independently.
pub fn denied(seed: u64, worker: u32, round: u32, deny_permille: u32) -> bool {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((u64::from(worker) << 32) | u64::from(round));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % 1000) < u64::from(deny_permille)
}

fn encode_request(worker: u32, round: u32, aid: AidId) -> Bytes {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&worker.to_le_bytes());
    buf.extend_from_slice(&round.to_le_bytes());
    buf.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    Bytes::from(buf)
}

fn decode_request(data: &[u8]) -> (u32, u32, AidId) {
    let worker = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let round = u32::from_le_bytes(data[4..8].try_into().unwrap());
    let raw = u64::from_le_bytes(data[8..16].try_into().unwrap());
    (worker, round, AidId::from_raw(ProcessId::from_raw(raw)))
}

/// Builds the environment without running it: one resolver/worker pair per
/// lane (resolver spawned first in each pair). Sharding the resolvers, one
/// per worker, keeps every op log proportional to `rounds` — a shared
/// resolver's log would grow with `workers * rounds` and rollback
/// re-execution (which replays the whole log) would go quadratic — and
/// keeps each worker's deny cascades out of the other workers' A_IDO
/// chains.
pub fn build(cfg: ContentionConfig) -> HopeEnv {
    assert!(cfg.workers >= 1 && cfg.rounds >= 1);
    assert!(cfg.deny_permille <= 1000, "deny_permille is out of range");
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .spec_policy(cfg.policy)
        .build();
    for w in 0..cfg.workers {
        let resolver = env.spawn_user(&format!("resolver-{w}"), move |ctx| loop {
            let m = ctx.receive(None);
            match m.channel {
                CH_REQUEST => {
                    let (worker, round, aid) = decode_request(&m.data);
                    // Resolve from a definite state: an affirm issued from
                    // an interval tainted by a pending assumption would be
                    // retracted when that assumption dies (A_IDO
                    // transitivity), and each retraction re-executes the
                    // affirmed rounds for no reason — at a 30% deny rate
                    // the retraction cascade is self-sustaining. A verdict
                    // is a commitment: the resolver settles its own
                    // speculation first.
                    ctx.await_definite();
                    if denied(cfg.seed, worker, round, cfg.deny_permille) {
                        ctx.deny(aid);
                    } else {
                        ctx.affirm(aid);
                    }
                }
                CH_PROGRESS => {} // speculative streaming update
                CH_DONE => break,
                other => unreachable!("unknown channel {other}"),
            }
        });
        env.spawn_user(&format!("worker-{w}"), move |ctx| {
            for round in 0..cfg.rounds {
                let aid = ctx.aid_init();
                ctx.send(resolver, CH_REQUEST, encode_request(w, round, aid));
                if ctx.guess(aid) {
                    // Optimistic branch: heavy work, streamed in chunks so
                    // a late deny leaves tagged in-flight progress for the
                    // resolver to cancel.
                    for _ in 0..cfg.chunks {
                        ctx.compute(cfg.chunk);
                        ctx.send(resolver, CH_PROGRESS, Bytes::from_static(b"p"));
                    }
                } else {
                    // Pessimistic branch: the cheap definite fallback.
                    ctx.compute(cfg.light);
                }
            }
            ctx.await_definite();
            ctx.send(resolver, CH_DONE, Bytes::new());
        });
    }
    env
}

/// Runs one configuration to quiescence.
pub fn run(cfg: ContentionConfig) -> ContentionResult {
    let mut env = build(cfg);
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(
        report.run.blocked.is_empty(),
        "no process may stay blocked: {:?}",
        report.run.blocked
    );
    let committed = u64::from(cfg.workers) * u64::from(cfg.rounds);
    let denied_rounds = (0..cfg.workers)
        .flat_map(|w| (0..cfg.rounds).map(move |r| (w, r)))
        .filter(|&(w, r)| denied(cfg.seed, w, r, cfg.deny_permille))
        .count() as u64;
    let elapsed_ns = report.run.now.as_nanos().max(1);
    ContentionResult {
        committed_rounds: committed,
        denied_rounds,
        quiescent: report.run.now,
        throughput: committed as f64 * 1e9 / elapsed_ns as f64,
        rollbacks: report.hope.rollbacks,
        cancelled_intervals: report.hope.cancelled_intervals,
        wasted_ops: report
            .hope
            .attribution
            .by_cause
            .values()
            .map(|w| w.ops_discarded)
            .sum(),
    }
}

/// Sweeps the deny rate under each policy and tabulates throughput,
/// rollbacks and cancellations.
pub fn sweep(deny_permilles: &[u32], policies: &[(&str, SpecPolicy)]) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E-adaptive: throughput under contention, by speculation policy",
        &[
            "policy",
            "deny",
            "rounds/s",
            "rollbacks",
            "cancelled",
            "wasted_ops",
        ],
    );
    for &deny_permille in deny_permilles {
        for &(name, policy) in policies {
            let r = run(ContentionConfig {
                deny_permille,
                policy,
                ..ContentionConfig::default()
            });
            table.row(&[
                name.to_string(),
                format!("{:.1}%", deny_permille as f64 / 10.0),
                format!("{:.1}", r.throughput),
                format!("{}", r.rollbacks),
                format!("{}", r.cancelled_intervals),
                format!("{}", r.wasted_ops),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(deny_permille: u32, policy: SpecPolicy, seed: u64) -> ContentionConfig {
        ContentionConfig {
            workers: 2,
            rounds: 20,
            deny_permille,
            chunks: 8,
            policy,
            seed,
            ..ContentionConfig::default()
        }
    }

    #[test]
    fn deny_hash_matches_requested_rate_roughly() {
        let hits = (0..10_000).filter(|&i| denied(1, i, 0, 300)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn optimistic_run_commits_every_round() {
        let r = run(small(300, SpecPolicy::AlwaysOptimistic, 3));
        assert_eq!(r.committed_rounds, 40);
        assert!(r.rollbacks > 0, "a 30% deny rate must cause rollbacks");
        assert_eq!(r.cancelled_intervals, 0, "the default policy never cancels");
    }

    #[test]
    fn adaptive_cancels_doomed_work_under_heavy_denial() {
        let policy = SpecPolicy::adaptive(0.4, 8, 0.1).unwrap();
        let r = run(small(900, policy, 3));
        assert_eq!(r.committed_rounds, 40);
        assert!(
            r.cancelled_intervals > 0,
            "doomed progress messages must be cancelled: {r:?}"
        );
    }

    #[test]
    fn pessimistic_run_never_rolls_back_the_workers() {
        let r = run(small(500, SpecPolicy::Pessimistic, 5));
        assert_eq!(r.committed_rounds, 40);
        // Workers wait for the definite value, so no heavy branch is ever
        // discarded; the denied guesses resolve at the guess point itself.
        assert!(
            r.quiescent > VirtualTime::ZERO,
            "waiting consumes round trips"
        );
    }

    #[test]
    fn contention_is_deterministic_per_seed() {
        let policy = SpecPolicy::adaptive(0.5, 8, 0.1).unwrap();
        let a = run(small(600, policy, 11));
        let b = run(small(600, policy, 11));
        assert_eq!(a.quiescent, b.quiescent);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.cancelled_intervals, b.cancelled_intervals);
    }

    #[test]
    fn adaptive_beats_optimistic_when_denies_dominate() {
        let policy = SpecPolicy::adaptive(0.4, 8, 0.1).unwrap();
        let optimistic = run(ContentionConfig {
            deny_permille: 900,
            seed: 7,
            ..ContentionConfig::default()
        });
        let adaptive = run(ContentionConfig {
            deny_permille: 900,
            policy,
            seed: 7,
            ..ContentionConfig::default()
        });
        assert!(
            adaptive.throughput > optimistic.throughput,
            "adaptive {a:.1} must beat optimistic {o:.1} at 90% deny",
            a = adaptive.throughput,
            o = optimistic.throughput
        );
    }
}

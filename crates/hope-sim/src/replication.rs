//! E8 — optimistic replication (the paper's §6 pointer to "Optimistic
//! Replication in HOPE" \[5\]).
//!
//! Replicas apply updates against a cached version of a shared object and
//! report results downstream *before* the owner validates the version —
//! the optimistic-replication bet that conflicts are rare. A conflicting
//! (stale-version) update is denied: the replica and everything that
//! consumed its speculative result roll back, and the replica refetches
//! and retries. The sweep varies the conflict pressure (replica count per
//! object) and measures commit latency and rollback churn.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::{BufMut, Bytes, BytesMut};
use hope_core::{HopeEnv, HopeReport};
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

const CH_CHECK: u32 = 10;
const CH_GET: u32 = 11;
const CH_SNAP: u32 = 12;

/// Parameters of one replication run.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Racing replicas (each applies exactly one update). Higher = more
    /// version conflicts.
    pub replicas: u32,
    /// One-way network latency.
    pub latency: VirtualDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 4,
            latency: VirtualDuration::from_millis(2),
            seed: 0,
        }
    }
}

/// Measured outcome of one replication run.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationResult {
    /// Committed value at the owner (must equal the sum of all deltas).
    pub value: u64,
    /// Committed version (must equal the replica count).
    pub version: u64,
    /// Virtual time of the last replica's *optimistic* result availability.
    pub optimistic_done: VirtualTime,
    /// Virtual time at quiescence (all conflicts resolved and committed).
    pub committed: VirtualTime,
    /// Intervals rolled back (conflict churn).
    pub rollbacks: u64,
}

fn decode_u64s(data: &[u8]) -> Vec<u64> {
    data.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Runs `replicas` racing single-update replicas against one owner.
pub fn run(cfg: ReplicationConfig) -> ReplicationResult {
    let env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    run_in(env, cfg).0
}

/// Runs the same scenario in a caller-built environment, also handing
/// back the full [`HopeReport`]. The chaos workload uses this to add
/// fault injection and read the link-layer counters; spawn order (owner
/// first, then `replica-0..n`) is part of the contract so crash points
/// can be aimed by pid.
pub fn run_in(mut env: HopeEnv, cfg: ReplicationConfig) -> (ReplicationResult, HopeReport) {
    let total = cfg.replicas;
    let owner_final = Arc::new(Mutex::new((0u64, 0u64)));
    let of = owner_final.clone();
    let owner = env.spawn_user("owner", move |ctx| {
        let mut version = 0u64;
        let mut value = 0u64;
        let mut applied = 0u32;
        while applied < total {
            let msg = ctx.receive(None);
            match msg.channel {
                CH_CHECK => {
                    let f = decode_u64s(&msg.data);
                    let aid = AidId::from_raw(ProcessId::from_raw(f[0]));
                    if f[1] == version {
                        value += f[2];
                        version += 1;
                        applied += 1;
                        ctx.affirm(aid);
                    } else {
                        ctx.deny(aid);
                    }
                }
                CH_GET => {
                    let mut b = BytesMut::with_capacity(16);
                    b.put_u64_le(version);
                    b.put_u64_le(value);
                    ctx.send(msg.src, CH_SNAP, b.freeze());
                }
                _ => {}
            }
        }
        if !ctx.is_replaying() {
            *of.lock().unwrap() = (version, value);
        }
    });
    let progress: Arc<Mutex<BTreeMap<u64, VirtualTime>>> = Arc::new(Mutex::new(BTreeMap::new()));
    for w in 0..cfg.replicas as u64 {
        let progress = progress.clone();
        let delta = w + 1;
        env.spawn_user(&format!("replica-{w}"), move |ctx| {
            ctx.send(owner, CH_GET, Bytes::new());
            let snap = ctx.receive(Some(CH_SNAP));
            let mut version = decode_u64s(&snap.data)[0];
            loop {
                let fresh = ctx.aid_init();
                let mut b = BytesMut::with_capacity(24);
                b.put_u64_le(fresh.process().as_raw());
                b.put_u64_le(version);
                b.put_u64_le(delta);
                ctx.send(owner, CH_CHECK, b.freeze());
                if ctx.guess(fresh) {
                    // Optimistic result available right here.
                    if !ctx.is_replaying() {
                        progress.lock().unwrap().insert(w, ctx.now());
                    }
                    // Commit barrier: only report fully-validated below.
                    ctx.await_definite();
                    return;
                }
                ctx.send(owner, CH_GET, Bytes::new());
                let snap = ctx.receive(Some(CH_SNAP));
                version = decode_u64s(&snap.data)[0];
            }
        });
    }
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(report.run.blocked.is_empty(), "{:?}", report.run.blocked);
    let (version, value) = *owner_final.lock().unwrap();
    let optimistic_done = progress
        .lock()
        .unwrap()
        .values()
        .copied()
        .max()
        .unwrap_or(VirtualTime::ZERO);
    let result = ReplicationResult {
        value,
        version,
        optimistic_done,
        committed: report.run.now,
        rollbacks: report.hope.rollbacks,
    };
    (result, report)
}

/// Sweeps replica count (conflict pressure) and tabulates churn.
pub fn sweep(replica_counts: &[u32], latency: VirtualDuration, seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E8: optimistic replication — conflict pressure vs. churn ([5])",
        &[
            "replicas",
            "optimistic done",
            "committed",
            "rollbacks",
            "value ok",
        ],
    );
    for &replicas in replica_counts {
        let cfg = ReplicationConfig {
            replicas,
            latency,
            seed,
        };
        let r = run(cfg);
        let expected: u64 = (1..=replicas as u64).sum();
        table.row(&[
            format!("{replicas}"),
            format!("{:.3}ms", r.optimistic_done.as_secs_f64() * 1e3),
            format!("{:.3}ms", r.committed.as_secs_f64() * 1e3),
            format!("{}", r.rollbacks),
            format!("{}", r.value == expected && r.version == replicas as u64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_updates_apply_exactly_once() {
        for replicas in [1u32, 2, 4, 8] {
            let r = run(ReplicationConfig {
                replicas,
                ..ReplicationConfig::default()
            });
            assert_eq!(r.version, replicas as u64, "{replicas} replicas");
            assert_eq!(r.value, (1..=replicas as u64).sum::<u64>());
        }
    }

    #[test]
    fn single_replica_never_conflicts() {
        let r = run(ReplicationConfig {
            replicas: 1,
            ..ReplicationConfig::default()
        });
        assert_eq!(r.rollbacks, 0);
    }

    #[test]
    fn conflict_churn_grows_with_replica_count() {
        let small = run(ReplicationConfig {
            replicas: 2,
            ..ReplicationConfig::default()
        });
        let big = run(ReplicationConfig {
            replicas: 8,
            ..ReplicationConfig::default()
        });
        assert!(
            big.rollbacks > small.rollbacks,
            "{} vs {}",
            small.rollbacks,
            big.rollbacks
        );
    }

    #[test]
    fn optimistic_results_precede_commitment() {
        let r = run(ReplicationConfig {
            replicas: 4,
            ..ReplicationConfig::default()
        });
        assert!(r.optimistic_done <= r.committed);
    }

    #[test]
    fn sweep_rows() {
        let t = sweep(&[1, 2], VirtualDuration::from_millis(1), 3);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r[4] == "true"));
    }
}

//! F13/F14 — interference rings and Algorithm 2's cycle detection.
//!
//! N processes each guess assumption *i* and concurrently affirm
//! assumption *(i+1) mod N*: a dependency cycle of size N forms among the
//! AIDs (generalizing Figure 13's 2-cycle). Algorithm 2's `UDO` sets break
//! the cycle (Figure 14) and every interval finalizes; Algorithm 1
//! "bounces" Replace messages around the ring forever.

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

/// Outcome of one ring run.
#[derive(Debug, Clone, Copy)]
pub struct RingResult {
    /// Ring size.
    pub n: u32,
    /// True if every interval finalized (the run converged).
    pub converged: bool,
    /// Events processed until quiescence (or the event cap).
    pub events: u64,
    /// HOPE protocol messages exchanged.
    pub hope_messages: u64,
    /// Dependencies discarded by UDO cycle detection.
    pub cycles_broken: u64,
    /// Virtual time at the end of the run.
    pub finished_at: VirtualTime,
}

pub(crate) fn encode_aids(aids: &[AidId]) -> Bytes {
    let mut out = Vec::with_capacity(aids.len() * 8);
    for aid in aids {
        out.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    }
    Bytes::from(out)
}

pub(crate) fn decode_aids(data: &[u8]) -> Vec<AidId> {
    data.chunks_exact(8)
        .map(|c| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(c);
            AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(raw)))
        })
        .collect()
}

/// Runs a mutual-affirm ring of size `n`. `cycle_detection = false`
/// reproduces Algorithm 1 (bounded by `max_events`).
pub fn run_ring(n: u32, cycle_detection: bool, max_events: u64, seed: u64) -> RingResult {
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::lan())
        .cycle_detection(cycle_detection)
        .max_events(max_events)
        .build();
    let mut pids = Vec::new();
    for i in 0..n as usize {
        let pid = env.spawn_user(&format!("ring-{i}"), move |ctx| {
            let m = ctx.receive(None);
            let aids = decode_aids(&m.data);
            let mine = aids[i];
            let next = aids[(i + 1) % aids.len()];
            if ctx.guess(mine) {
                ctx.affirm(next);
            }
        });
        pids.push(pid);
    }
    env.spawn_user("coordinator", move |ctx| {
        let aids: Vec<AidId> = (0..pids.len()).map(|_| ctx.aid_init()).collect();
        let payload = encode_aids(&aids);
        for &p in &pids {
            ctx.send(p, 0, payload.clone());
        }
    });
    let report = env.run();
    assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
    RingResult {
        n,
        converged: !report.run.hit_event_limit && report.run.blocked.is_empty(),
        events: report.run.events,
        hope_messages: report.run.stats.total_hope(),
        cycles_broken: report.hope.cycles_broken,
        finished_at: report.run.now,
    }
}

/// Sweeps ring size for Algorithm 2 and contrasts a bounded Algorithm 1
/// run at each size.
pub fn sweep(sizes: &[u32], seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "F13/F14: interference rings — Algorithm 2 converges, Algorithm 1 bounces",
        &[
            "ring N",
            "alg2 converged",
            "alg2 msgs",
            "alg2 time",
            "cycles broken",
            "alg1 converged",
            "alg1 msgs (capped)",
        ],
    );
    for &n in sizes {
        let alg2 = run_ring(n, true, 5_000_000, seed);
        let alg1 = run_ring(n, false, 20_000 * n as u64, seed);
        table.row(&[
            format!("{n}"),
            format!("{}", alg2.converged),
            format!("{}", alg2.hope_messages),
            format!(
                "{}",
                VirtualDuration::from_nanos(alg2.finished_at.as_nanos())
            ),
            format!("{}", alg2.cycles_broken),
            format!("{}", alg1.converged),
            format!("{}", alg1.hope_messages),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_2_converges_for_all_small_rings() {
        for n in 2..=8 {
            let r = run_ring(n, true, 5_000_000, 1);
            assert!(r.converged, "ring {n} must converge");
            assert!(r.cycles_broken >= 1, "ring {n} must detect its cycle");
        }
    }

    #[test]
    fn algorithm_1_bounces_on_a_2_ring() {
        let r = run_ring(2, false, 100_000, 1);
        assert!(!r.converged, "Algorithm 1 must not converge on a cycle");
        assert_eq!(r.cycles_broken, 0);
    }

    #[test]
    fn messages_grow_with_ring_size() {
        let a = run_ring(2, true, 5_000_000, 1);
        let b = run_ring(8, true, 5_000_000, 1);
        assert!(b.hope_messages > a.hope_messages);
    }

    #[test]
    fn sweep_contrasts_both_algorithms() {
        let t = sweep(&[2, 3], 1);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][1].contains("true"));
        assert!(t.rows[0][5].contains("false"));
    }
}

//! Chrome trace-event export of the causal trace layer.
//!
//! Converts the [`TraceEvent`] stream collected by
//! [`hope_types::TraceCollector`] into the Chrome trace-event JSON object
//! format (`chrome://tracing` / Perfetto's legacy loader): a top-level
//! object with a `traceEvents` array of instant events, one per trace
//! record, grouped by HOPE process id. Rollback attribution and the ring's
//! drop count ride along under `otherData` so a trace file is a complete
//! record of the run's speculation economy.
//!
//! `ts` is in microseconds (the format's unit), derived from the
//! deterministic virtual-time stamp; the full-precision virtual and
//! wall-clock nanosecond stamps are preserved per event under `args`.
//!
//! [`validate_chrome_trace`] checks the structural schema — every consumer
//! in CI validates exported files through it before trusting them.

use hope_types::{RollbackAttribution, TraceEvent, TraceEventKind};

use crate::json::Value;

/// Event name, category and kind-specific `args` fields.
fn describe(kind: &TraceEventKind) -> (&'static str, &'static str, Vec<(String, Value)>) {
    let s = |v: &dyn std::fmt::Display| Value::String(v.to_string());
    match kind {
        TraceEventKind::AidInit { aid } => {
            ("aid_init", "speculation", vec![("aid".into(), s(aid))])
        }
        TraceEventKind::Guess { aid, interval } => (
            "guess",
            "speculation",
            vec![("aid".into(), s(aid)), ("interval".into(), s(interval))],
        ),
        TraceEventKind::ImplicitGuess { new_aids, interval } => (
            "implicit_guess",
            "speculation",
            vec![
                ("new_aids".into(), Value::Number(*new_aids as i64)),
                ("interval".into(), s(interval)),
            ],
        ),
        TraceEventKind::Affirm { aid } => ("affirm", "speculation", vec![("aid".into(), s(aid))]),
        TraceEventKind::Deny { aid } => ("deny", "speculation", vec![("aid".into(), s(aid))]),
        TraceEventKind::FreeOf { aid } => ("free_of", "speculation", vec![("aid".into(), s(aid))]),
        TraceEventKind::AidResolved { aid, denied } => (
            "aid_resolved",
            "speculation",
            vec![
                ("aid".into(), s(aid)),
                ("denied".into(), Value::Number(*denied as i64)),
            ],
        ),
        TraceEventKind::IntervalOpen { interval, implicit } => (
            "interval_open",
            "interval",
            vec![
                ("interval".into(), s(interval)),
                ("implicit".into(), Value::Number(*implicit as i64)),
            ],
        ),
        TraceEventKind::IntervalFinalized { interval } => (
            "interval_finalized",
            "interval",
            vec![("interval".into(), s(interval))],
        ),
        TraceEventKind::RollbackStart {
            floor,
            cause,
            crash,
            discarded,
            ops_discarded,
            messages_invalidated,
        } => (
            "rollback",
            "rollback",
            vec![
                ("floor".into(), s(floor)),
                (
                    "cause".into(),
                    match cause {
                        Some(aid) => s(aid),
                        None => Value::Null,
                    },
                ),
                ("crash".into(), Value::Number(*crash as i64)),
                (
                    "intervals_discarded".into(),
                    Value::Number(*discarded as i64),
                ),
                ("ops_discarded".into(), Value::Number(*ops_discarded as i64)),
                (
                    "messages_invalidated".into(),
                    Value::Number(*messages_invalidated as i64),
                ),
            ],
        ),
        TraceEventKind::Reexecution => ("reexecution", "rollback", vec![]),
        TraceEventKind::CrashRecovery => ("crash_recovery", "rollback", vec![]),
        TraceEventKind::Send { dst, seq } => (
            "send",
            "wire",
            vec![
                ("dst".into(), s(dst)),
                ("seq".into(), Value::Number(*seq as i64)),
            ],
        ),
        TraceEventKind::Deliver { src, seq } => (
            "deliver",
            "wire",
            vec![
                ("src".into(), s(src)),
                ("seq".into(), Value::Number(*seq as i64)),
            ],
        ),
        TraceEventKind::Retransmit { dst, seq } => (
            "retransmit",
            "wire",
            vec![
                ("dst".into(), s(dst)),
                ("seq".into(), Value::Number(*seq as i64)),
            ],
        ),
        TraceEventKind::Crash => ("crash", "fault", vec![]),
        TraceEventKind::Restart => ("restart", "fault", vec![]),
        TraceEventKind::TagDecodeMismatch { src, seq } => (
            "tag_decode_mismatch",
            "fault",
            vec![
                ("src".into(), s(src)),
                ("seq".into(), Value::Number(*seq as i64)),
            ],
        ),
        TraceEventKind::SpecObserve {
            aid,
            denied,
            aid_ewma,
            process_ewma,
        } => (
            "spec_observe",
            "speculation",
            vec![
                ("aid".into(), s(aid)),
                ("denied".into(), Value::Number(*denied as i64)),
                ("aid_ewma".into(), Value::Number(*aid_ewma as i64)),
                ("process_ewma".into(), Value::Number(*process_ewma as i64)),
            ],
        ),
        TraceEventKind::SpecThrottle { aid, on, ewma } => (
            "spec_throttle",
            "speculation",
            vec![
                (
                    "aid".into(),
                    match aid {
                        Some(aid) => s(aid),
                        None => Value::Null,
                    },
                ),
                ("on".into(), Value::Number(*on as i64)),
                ("ewma".into(), Value::Number(*ewma as i64)),
            ],
        ),
        TraceEventKind::SpecWait { aid, depth_limited } => (
            "spec_wait",
            "speculation",
            vec![
                ("aid".into(), s(aid)),
                ("depth_limited".into(), Value::Number(*depth_limited as i64)),
            ],
        ),
        TraceEventKind::CancelDoomed { aid, message } => (
            "cancel_doomed",
            "speculation",
            vec![
                ("aid".into(), s(aid)),
                ("message".into(), Value::Number(*message as i64)),
            ],
        ),
    }
}

/// Renders `events` as a Chrome trace-event JSON object. `dropped` is the
/// collector's ring-eviction count (surfaced so a truncated trace is never
/// mistaken for a complete one); `attribution` is the run's rollback
/// attribution table.
pub fn chrome_trace(
    events: &[TraceEvent],
    dropped: u64,
    attribution: &RollbackAttribution,
) -> Value {
    let mut trace_events = Vec::with_capacity(events.len());
    for event in events {
        let (name, cat, mut args) = describe(&event.kind);
        args.push((
            "virt_ns".into(),
            Value::Number(event.virt.as_nanos().min(i64::MAX as u64) as i64),
        ));
        args.push((
            "wall_ns".into(),
            Value::Number(event.wall_ns.min(i64::MAX as u64) as i64),
        ));
        trace_events.push(Value::Object(vec![
            ("name".into(), Value::String(name.into())),
            ("cat".into(), Value::String(cat.into())),
            ("ph".into(), Value::String("i".into())),
            ("s".into(), Value::String("t".into())),
            (
                "ts".into(),
                Value::Number((event.virt.as_nanos() / 1_000).min(i64::MAX as u64) as i64),
            ),
            (
                "pid".into(),
                Value::Number(event.pid.as_raw().min(i64::MAX as u64) as i64),
            ),
            ("tid".into(), Value::Number(0)),
            ("args".into(), Value::Object(args)),
        ]));
    }
    let attribution_rows = attribution
        .by_cause
        .iter()
        .map(|(cause, work)| {
            Value::Object(vec![
                ("cause".into(), Value::String(cause.to_string())),
                (
                    "intervals_discarded".into(),
                    Value::Number(work.intervals_discarded as i64),
                ),
                (
                    "ops_discarded".into(),
                    Value::Number(work.ops_discarded as i64),
                ),
                (
                    "messages_invalidated".into(),
                    Value::Number(work.messages_invalidated as i64),
                ),
                (
                    "reexecutions".into(),
                    Value::Number(work.reexecutions as i64),
                ),
            ])
        })
        .collect();
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(trace_events)),
        ("displayTimeUnit".into(), Value::String("ms".into())),
        (
            "otherData".into(),
            Value::Object(vec![
                (
                    "dropped_events".into(),
                    Value::Number(dropped.min(i64::MAX as u64) as i64),
                ),
                ("attribution".into(), Value::Array(attribution_rows)),
            ]),
        ),
    ])
}

/// Drains `tracer` and writes its Chrome trace to `path`, validating the
/// rendered object first so a malformed artifact never reaches disk.
pub fn write_trace_file(
    path: &std::path::Path,
    tracer: &hope_types::TraceCollector,
    attribution: &RollbackAttribution,
) -> std::io::Result<()> {
    let events = tracer.drain();
    let trace = chrome_trace(&events, tracer.dropped(), attribution);
    validate_chrome_trace(&trace)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, crate::json::to_string_pretty(&trace))
}

/// Structural schema check for an exported Chrome trace. Returns the first
/// violation as `Err`. Accepts exactly the shape [`chrome_trace`] emits
/// (instant events with scope, numeric `ts`/`pid`/`tid`, an `args`
/// object) plus the standard metadata phase, so hand-edited or truncated
/// artifacts fail loudly in CI rather than silently misrendering.
pub fn validate_chrome_trace(trace: &Value) -> Result<(), String> {
    let events = match trace.get("traceEvents") {
        Value::Array(events) => events,
        _ => return Err("top-level traceEvents array missing".into()),
    };
    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("traceEvents[{i}]: {what}"));
        if !matches!(event, Value::Object(_)) {
            return fail("not an object");
        }
        if event.get("name").as_str().is_none() {
            return fail("missing string name");
        }
        let ph = match event.get("ph").as_str() {
            Some(ph) => ph,
            None => return fail("missing string ph"),
        };
        match ph {
            "i" => {
                if event.get("s").as_str().is_none() {
                    return fail("instant event missing scope s");
                }
            }
            "M" => {}
            _ => return fail("unsupported phase (expected i or M)"),
        }
        for key in ["ts", "pid", "tid"] {
            match event.get(key).as_i64() {
                Some(n) if n >= 0 => {}
                Some(_) => return fail("negative timestamp or id"),
                None => return fail("missing numeric ts/pid/tid"),
            }
        }
        if !matches!(event.get("args"), Value::Object(_) | Value::Null) {
            return fail("args must be an object when present");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_types::{AidId, ProcessId, VirtualTime, WastedWork};

    fn sample_events() -> Vec<TraceEvent> {
        let pid = ProcessId::from_raw(3);
        let aid = AidId::from_raw(ProcessId::from_raw(9));
        vec![
            TraceEvent {
                pid,
                virt: VirtualTime::from_nanos(1_500),
                wall_ns: 10,
                kind: TraceEventKind::AidInit { aid },
            },
            TraceEvent {
                pid,
                virt: VirtualTime::from_nanos(2_500),
                wall_ns: 20,
                kind: TraceEventKind::Deny { aid },
            },
            TraceEvent {
                pid,
                virt: VirtualTime::from_nanos(3_500),
                wall_ns: 30,
                kind: TraceEventKind::Reexecution,
            },
        ]
    }

    #[test]
    fn export_round_trips_and_validates() {
        let mut attribution = RollbackAttribution::new();
        attribution.charge(
            hope_types::BlameKey::Aid(AidId::from_raw(ProcessId::from_raw(9))),
            WastedWork {
                intervals_discarded: 1,
                ops_discarded: 4,
                messages_invalidated: 2,
                reexecutions: 1,
            },
        );
        let trace = chrome_trace(&sample_events(), 7, &attribution);
        let text = crate::json::to_string_pretty(&trace);
        let parsed = crate::json::from_str(&text).unwrap();
        assert_eq!(parsed, trace);
        validate_chrome_trace(&parsed).unwrap();
        assert_eq!(parsed["traceEvents"][0]["name"], "aid_init");
        assert_eq!(parsed["traceEvents"][0]["ts"].as_i64(), Some(1));
        assert_eq!(
            parsed["traceEvents"][0]["args"]["virt_ns"].as_i64(),
            Some(1_500)
        );
        assert_eq!(
            parsed["otherData"]["dropped_events"].as_i64(),
            Some(7),
            "ring truncation must be visible in the artifact"
        );
        assert_eq!(
            parsed["otherData"]["attribution"][0]["ops_discarded"].as_i64(),
            Some(4)
        );
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace(&Value::Object(vec![])).is_err());
        let no_name = Value::Object(vec![(
            "traceEvents".into(),
            Value::Array(vec![Value::Object(vec![(
                "ph".into(),
                Value::String("i".into()),
            )])]),
        )]);
        let err = validate_chrome_trace(&no_name).unwrap_err();
        assert!(err.contains("traceEvents[0]"), "{err}");
        let bad_ph = Value::Object(vec![(
            "traceEvents".into(),
            Value::Array(vec![Value::Object(vec![
                ("name".into(), Value::String("x".into())),
                ("ph".into(), Value::String("X".into())),
            ])]),
        )]);
        assert!(validate_chrome_trace(&bad_ph).is_err());
    }

    #[test]
    fn every_event_kind_describes_cleanly() {
        let pid = ProcessId::from_raw(1);
        let aid = AidId::from_raw(pid);
        let interval = hope_types::IntervalId::new(pid, 2);
        let kinds = vec![
            TraceEventKind::AidInit { aid },
            TraceEventKind::Guess { aid, interval },
            TraceEventKind::ImplicitGuess {
                new_aids: 2,
                interval,
            },
            TraceEventKind::Affirm { aid },
            TraceEventKind::Deny { aid },
            TraceEventKind::FreeOf { aid },
            TraceEventKind::AidResolved { aid, denied: true },
            TraceEventKind::IntervalOpen {
                interval,
                implicit: false,
            },
            TraceEventKind::IntervalFinalized { interval },
            TraceEventKind::RollbackStart {
                floor: interval,
                cause: Some(aid),
                crash: false,
                discarded: 1,
                ops_discarded: 2,
                messages_invalidated: 3,
            },
            TraceEventKind::Reexecution,
            TraceEventKind::CrashRecovery,
            TraceEventKind::Send { dst: pid, seq: 1 },
            TraceEventKind::Deliver { src: pid, seq: 1 },
            TraceEventKind::Retransmit { dst: pid, seq: 1 },
            TraceEventKind::Crash,
            TraceEventKind::Restart,
            TraceEventKind::TagDecodeMismatch { src: pid, seq: 1 },
            TraceEventKind::SpecObserve {
                aid,
                denied: true,
                aid_ewma: 8192,
                process_ewma: 4096,
            },
            TraceEventKind::SpecThrottle {
                aid: Some(aid),
                on: true,
                ewma: 8192,
            },
            TraceEventKind::SpecWait {
                aid,
                depth_limited: false,
            },
            TraceEventKind::CancelDoomed { aid, message: true },
        ];
        let events: Vec<TraceEvent> = kinds
            .into_iter()
            .map(|kind| TraceEvent {
                pid,
                virt: VirtualTime::ZERO,
                wall_ns: 0,
                kind,
            })
            .collect();
        let trace = chrome_trace(&events, 0, &RollbackAttribution::new());
        validate_chrome_trace(&trace).unwrap();
        let text = crate::json::to_string_pretty(&trace);
        assert_eq!(crate::json::from_str(&text).unwrap(), trace);
    }
}

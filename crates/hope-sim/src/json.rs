//! A deliberately tiny JSON writer/parser for result tables.
//!
//! The workspace builds offline with no third-party serializers, and the
//! only JSON the experiments need is "array of flat objects with string
//! values" (one object per table row). This module implements exactly
//! that subset — plus enough parsing to round-trip its own output in
//! tests — rather than a general JSON library.

use std::fmt;

/// A JSON value restricted to the shapes tables emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, also returned when indexing misses.
    Null,
    /// An integer scalar (Chrome trace timestamps/pids must be numeric).
    Number(i64),
    /// A string scalar.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; returns [`Value::Null`] when absent or not an object.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Element lookup; returns [`Value::Null`] when out of range or not
    /// an array.
    pub fn at(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.at(index)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                out.push_str(&inner_pad);
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, v, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints `value` with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_pretty(self))
    }
}

/// Parse error: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.at,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.error("bad code point"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.at;
                if self.bytes.get(self.at) == Some(&b'-') {
                    self.at += 1;
                }
                while matches!(self.bytes.get(self.at), Some(b'0'..=b'9')) {
                    self.at += 1;
                }
                // Integers only — the writer never emits fractions or
                // exponents, so the parser rejects them too.
                let text = std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| self.error("invalid UTF-8"))?;
                text.parse::<i64>()
                    .map(Value::Number)
                    .map_err(|_| self.error("bad number"))
            }
            Some(b'n') => {
                if self.bytes[self.at..].starts_with(b"null") {
                    self.at += 4;
                    Ok(Value::Null)
                } else {
                    Err(self.error("expected null"))
                }
            }
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b']') {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b'}') {
                    self.at += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.at) {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            _ => Err(self.error("expected value")),
        }
    }
}

/// Parses a JSON document in the subset this module emits.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.at == parser.bytes.len() {
        Ok(value)
    } else {
        Err(parser.error("trailing input"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let value = Value::Array(vec![
            Value::Object(vec![
                ("plain".into(), Value::String("x".into())),
                ("tricky".into(), Value::String("a\"b\\c\nd\te".into())),
            ]),
            Value::Array(vec![]),
            Value::Object(vec![]),
            Value::Null,
        ]);
        let text = to_string_pretty(&value);
        assert_eq!(from_str(&text).unwrap(), value);
    }

    #[test]
    fn indexing_misses_return_null() {
        let v = from_str(r#"[{"k": "x"}]"#).unwrap();
        assert_eq!(v[0]["k"], "x");
        assert_eq!(v[0]["missing"], Value::Null);
        assert_eq!(v[5], Value::Null);
        assert_eq!(v["not-an-object"], Value::Null);
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(from_str("").is_err());
        assert!(
            from_str("[1.5]").is_err(),
            "fractions are outside the subset"
        );
        assert!(
            from_str("[1e3]").is_err(),
            "exponents are outside the subset"
        );
        assert!(from_str(r#"{"k": "v""#).is_err());
        let err = from_str(r#"["a" "b"]"#).unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn integers_round_trip() {
        let value = Value::Array(vec![
            Value::Number(0),
            Value::Number(-42),
            Value::Number(i64::MAX),
            Value::Number(i64::MIN),
        ]);
        let text = to_string_pretty(&value);
        assert_eq!(from_str(&text).unwrap(), value);
        assert_eq!(from_str("[1]").unwrap()[0].as_i64(), Some(1));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = from_str(r#""Aé""#).unwrap();
        assert_eq!(v, "Aé");
        let raw = from_str(r#""Aé""#).unwrap();
        assert_eq!(raw, "Aé");
    }
}

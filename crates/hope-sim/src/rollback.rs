//! E6 — rollback/replay cost versus speculation depth.
//!
//! The replay substitute for process checkpointing (DESIGN.md S2) pays for
//! a rollback by re-executing the operation-log prefix. This workload
//! stacks `depth` intervals (each with some logged traffic), denies the
//! *first* assumption, and measures how much work the rollback caused —
//! the cost grows linearly with the log prefix, the price of checkpoints
//! that occupy no memory.

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration};

/// Measured rollback cost at one depth.
#[derive(Debug, Clone, Copy)]
pub struct RollbackResult {
    /// Stacked speculation depth.
    pub depth: u32,
    /// Intervals rolled back (= depth: the first deny kills the stack).
    pub rollbacks: u64,
    /// Operations replayed during re-execution.
    pub replayed_ops: u64,
    /// Process re-executions.
    pub reexecutions: u64,
}

fn encode_aids(aids: &[AidId]) -> Bytes {
    let mut out = Vec::with_capacity(aids.len() * 8);
    for aid in aids {
        out.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_aids(data: &[u8]) -> Vec<AidId> {
    data.chunks_exact(8)
        .map(|c| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(c);
            AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(raw)))
        })
        .collect()
}

/// Stacks `depth` guesses with `ops_per_interval` logged operations each,
/// then the resolver denies the first assumption (rolling the whole stack
/// back) and affirms the rest so the run converges.
pub fn measure(depth: u32, ops_per_interval: u32, seed: u64) -> RollbackResult {
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::lan())
        .build();
    let resolver = env.spawn_user("resolver", move |ctx| {
        let m = ctx.receive(None);
        let aids = decode_aids(&m.data);
        ctx.compute(VirtualDuration::from_millis(5)); // let the stack build
        ctx.deny(aids[0]);
        for &aid in &aids[1..] {
            ctx.affirm(aid);
        }
    });
    env.spawn_user("speculator", move |ctx| {
        let aids: Vec<AidId> = (0..depth).map(|_| ctx.aid_init()).collect();
        ctx.send(resolver, 0, encode_aids(&aids));
        for &aid in &aids {
            if ctx.guess(aid) {
                // Logged work inside the interval: compute + randomness.
                for _ in 0..ops_per_interval {
                    let _ = ctx.random();
                }
                ctx.compute(VirtualDuration::from_micros(10));
            }
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    RollbackResult {
        depth,
        rollbacks: report.hope.rollbacks,
        replayed_ops: report.hope.replayed_ops,
        reexecutions: report.hope.reexecutions,
    }
}

/// Sweeps depth and tabulates replay cost.
pub fn sweep(depths: &[u32], ops_per_interval: u32, seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E6: rollback cost vs. speculation depth (replay-based checkpointing)",
        &["depth", "rollbacks", "replayed ops", "re-executions"],
    );
    for &depth in depths {
        let r = measure(depth, ops_per_interval, seed);
        table.row(&[
            format!("{depth}"),
            format!("{}", r.rollbacks),
            format!("{}", r.replayed_ops),
            format!("{}", r.reexecutions),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denying_the_first_assumption_rolls_back_everything() {
        let r = measure(6, 4, 1);
        assert!(
            r.rollbacks >= 6,
            "the whole stack must roll back: {}",
            r.rollbacks
        );
        assert!(r.reexecutions >= 1);
    }

    #[test]
    fn replay_cost_grows_with_depth() {
        let shallow = measure(2, 4, 1);
        let deep = measure(12, 4, 1);
        assert!(
            deep.replayed_ops > shallow.replayed_ops,
            "{} vs {}",
            shallow.replayed_ops,
            deep.replayed_ops
        );
    }

    #[test]
    fn replay_cost_grows_with_interval_size() {
        let small = measure(4, 2, 1);
        let big = measure(4, 32, 1);
        assert!(big.replayed_ops >= small.replayed_ops);
    }

    #[test]
    fn sweep_shape() {
        let t = sweep(&[2, 4], 2, 1);
        assert_eq!(t.rows.len(), 2);
    }
}

//! E7 — optimistic scientific programming (the paper's §6 pointer to
//! "Optimistic Programming in PVM" \[6\]).
//!
//! An iterative solver with distributed convergence detection: after each
//! iteration a worker must learn from the master whether the *global*
//! residual has converged. Synchronously that puts a network round trip on
//! every iteration's critical path. Optimistically, the worker guesses
//! "not converged yet" and starts the next iteration immediately; the
//! master affirms the guess while iterations remain, and denies it at the
//! convergence point — rolling back the few overshoot iterations the
//! worker speculated past the end.
//!
//! Expected shape: optimistic time ≈ K·C + overshoot, synchronous time ≈
//! K·(C + 2L); the speedup approaches (C + 2L)/C and the waste is bounded
//! by ≈ 2L/C rolled-back iterations per worker.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::{BufMut, Bytes, BytesMut};
use hope_core::HopeEnv;
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

const CH_CHECK: u32 = 30;
const CH_VERDICT: u32 = 31;

/// Parameters of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Worker count.
    pub workers: u32,
    /// Iterations until the global residual converges.
    pub iterations_to_converge: u32,
    /// Compute time per iteration per worker.
    pub compute: VirtualDuration,
    /// One-way network latency.
    pub latency: VirtualDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            workers: 4,
            iterations_to_converge: 10,
            compute: VirtualDuration::from_millis(2),
            latency: VirtualDuration::from_millis(5),
            seed: 0,
        }
    }
}

/// Measured outcome of one solver run.
#[derive(Debug, Clone, Copy)]
pub struct SolverResult {
    /// Virtual time when the last worker committed its final iteration.
    pub completion: VirtualTime,
    /// Intervals rolled back (the speculation overshoot).
    pub rollbacks: u64,
    /// Every worker's committed final iteration (must equal
    /// `iterations_to_converge`); `u32::MAX` when workers disagreed.
    pub final_iteration: u32,
}

fn encode_check(aid: Option<AidId>, worker: u64, iter: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(20);
    b.put_u64_le(aid.map_or(0, |a| a.process().as_raw()));
    b.put_u64_le(worker);
    b.put_u32_le(iter);
    b.freeze()
}

/// Runs the solver. `optimistic = false` waits for the master's verdict
/// every iteration; `true` speculates through the check.
pub fn run_solver(cfg: SolverConfig, optimistic: bool) -> SolverResult {
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    let k = cfg.iterations_to_converge;
    let workers = cfg.workers;

    // The master knows the global residual schedule: converged at k.
    let master = env.spawn_user("master", move |ctx| {
        let mut finished = 0u32;
        while finished < workers {
            let msg = ctx.receive(Some(CH_CHECK));
            let aid_raw = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            let iter = u32::from_le_bytes(msg.data[16..20].try_into().unwrap());
            let converged = iter + 1 >= k;
            if aid_raw != 0 {
                let aid = AidId::from_raw(ProcessId::from_raw(aid_raw));
                if converged {
                    ctx.deny(aid);
                    finished += 1;
                } else {
                    ctx.affirm(aid);
                }
            } else {
                // Synchronous protocol: reply with the verdict.
                ctx.send(msg.src, CH_VERDICT, Bytes::from(vec![u8::from(converged)]));
                if converged {
                    finished += 1;
                }
            }
        }
    });

    let finals: Arc<Mutex<BTreeMap<u64, (u32, VirtualTime)>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    for w in 0..cfg.workers as u64 {
        let finals = finals.clone();
        let compute = cfg.compute;
        env.spawn_user(&format!("worker-{w}"), move |ctx| {
            let mut iter = 0u32;
            loop {
                ctx.compute(compute); // the iteration's real work
                if optimistic {
                    let cont = ctx.aid_init();
                    ctx.send(master, CH_CHECK, encode_check(Some(cont), w, iter));
                    if ctx.guess(cont) {
                        iter += 1; // speculate into the next iteration
                        continue;
                    }
                    break; // converged at `iter`
                } else {
                    ctx.send(master, CH_CHECK, encode_check(None, w, iter));
                    let verdict = ctx.receive(Some(CH_VERDICT));
                    if verdict.data[0] == 1 {
                        break;
                    }
                    iter += 1;
                }
            }
            if !ctx.is_replaying() {
                finals.lock().unwrap().insert(w, (iter, ctx.now()));
            }
        });
    }
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(
        report.run.blocked.is_empty(),
        "solver must terminate: {:?}",
        report.run.blocked
    );
    let finals = finals.lock().unwrap();
    assert_eq!(finals.len(), cfg.workers as usize);
    let mut iterations: Vec<u32> = finals.values().map(|(i, _)| *i).collect();
    iterations.dedup();
    let final_iteration = if iterations.len() == 1 {
        iterations[0]
    } else {
        u32::MAX
    };
    let completion = finals
        .values()
        .map(|(_, t)| *t)
        .max()
        .unwrap_or(VirtualTime::ZERO);
    SolverResult {
        completion,
        rollbacks: report.hope.rollbacks,
        final_iteration,
    }
}

/// Sweeps the compute/latency ratio and tabulates speedup and waste.
pub fn sweep(cfg_base: SolverConfig, ratios: &[(u64, u64)]) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E7: optimistic convergence detection (iterative solver, [6])",
        &[
            "compute/iter",
            "latency",
            "sync time",
            "optimistic time",
            "speedup",
            "wasted iters (rollbacks)",
        ],
    );
    for &(compute_us, latency_us) in ratios {
        let cfg = SolverConfig {
            compute: VirtualDuration::from_micros(compute_us),
            latency: VirtualDuration::from_micros(latency_us),
            ..cfg_base
        };
        let sync = run_solver(cfg, false);
        let optimistic = run_solver(cfg, true);
        assert_eq!(sync.final_iteration, optimistic.final_iteration);
        table.row(&[
            format!("{}", cfg.compute),
            format!("{}", cfg.latency),
            format!("{:.3}ms", sync.completion.as_secs_f64() * 1e3),
            format!("{:.3}ms", optimistic.completion.as_secs_f64() * 1e3),
            format!(
                "{:.2}x",
                sync.completion.as_secs_f64() / optimistic.completion.as_secs_f64().max(1e-12)
            ),
            format!("{}", optimistic.rollbacks),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_converge_at_the_same_iteration() {
        let cfg = SolverConfig::default();
        let sync = run_solver(cfg, false);
        let optimistic = run_solver(cfg, true);
        assert_eq!(sync.final_iteration, cfg.iterations_to_converge - 1);
        assert_eq!(optimistic.final_iteration, sync.final_iteration);
    }

    #[test]
    fn optimism_removes_the_round_trip_from_each_iteration() {
        let cfg = SolverConfig::default(); // C=2ms, L=5ms, K=10
        let sync = run_solver(cfg, false);
        let optimistic = run_solver(cfg, true);
        // Sync ≈ 10 × 12 ms = 120 ms; optimistic ≈ 10 × 2 ms + tail.
        assert!(
            sync.completion.as_secs_f64() > optimistic.completion.as_secs_f64() * 2.0,
            "sync {} vs optimistic {}",
            sync.completion.as_secs_f64(),
            optimistic.completion.as_secs_f64()
        );
    }

    #[test]
    fn overshoot_is_bounded_by_the_latency_compute_ratio() {
        let cfg = SolverConfig {
            workers: 2,
            compute: VirtualDuration::from_millis(2),
            latency: VirtualDuration::from_millis(5),
            ..SolverConfig::default()
        };
        let optimistic = run_solver(cfg, true);
        // Overshoot per worker ≈ ceil(2L/C) = 5 iterations; allow slack
        // for the protocol tail but demand boundedness.
        let per_worker = optimistic.rollbacks / cfg.workers as u64;
        assert!(
            per_worker <= 10,
            "overshoot should be ≈ 2L/C ≈ 5, got {per_worker}"
        );
        assert!(per_worker >= 1, "speculation must overshoot at least once");
    }

    #[test]
    fn sync_variant_never_rolls_back() {
        let sync = run_solver(SolverConfig::default(), false);
        assert_eq!(sync.rollbacks, 0);
    }

    #[test]
    fn sweep_rows() {
        let t = sweep(
            SolverConfig {
                workers: 2,
                iterations_to_converge: 5,
                ..SolverConfig::default()
            },
            &[(2_000, 1_000), (2_000, 10_000)],
        );
        assert_eq!(t.rows.len(), 2);
    }
}

//! E4 — the wait-free property: HOPE primitive cost is flat in network
//! latency, while synchronous RPC cost grows linearly.
//!
//! "It is an important design criterion that all of the remote operations
//! resulting from user processes executing HOPE primitives be
//! asynchronous: user processes executing HOPE primitives should never
//! have to wait for a message from another process." (§5)

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{RpcClient, RpcServer};
use hope_runtime::NetworkConfig;
use hope_types::VirtualDuration;

/// Measured costs at one latency point.
#[derive(Debug, Clone, Copy)]
pub struct WaitfreeResult {
    /// One-way latency configured.
    pub latency: VirtualDuration,
    /// Virtual time spent executing a guess+affirm+free_of batch.
    pub primitive_cost: VirtualDuration,
    /// Virtual time spent on one synchronous RPC (the contrast).
    pub rpc_cost: VirtualDuration,
}

/// Measures primitive cost vs. RPC cost at one latency.
pub fn measure(latency: VirtualDuration, seed: u64) -> WaitfreeResult {
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::constant(latency))
        .build();
    let server = env.spawn_user("echo", |ctx| {
        RpcServer::serve(ctx, |_ctx, _m, body| body.clone());
    });
    let out = Arc::new(Mutex::new((VirtualDuration::ZERO, VirtualDuration::ZERO)));
    let o = out.clone();
    env.spawn_user("probe", move |ctx| {
        // A representative batch of primitives.
        let t0 = ctx.now();
        let x = ctx.aid_init();
        let y = ctx.aid_init();
        let _ = ctx.guess(x);
        ctx.affirm(y);
        let _ = ctx.free_of(y);
        ctx.affirm(x);
        let t1 = ctx.now();
        // One synchronous RPC for contrast.
        let _ = RpcClient::call(ctx, server, 0, Bytes::from_static(b"ping"));
        let t2 = ctx.now();
        if !ctx.is_replaying() {
            *o.lock().unwrap() = (t1 - t0, t2 - t1);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (primitive_cost, rpc_cost) = *out.lock().unwrap();
    WaitfreeResult {
        latency,
        primitive_cost,
        rpc_cost,
    }
}

/// Sweeps latency and tabulates the contrast.
pub fn sweep(latencies: &[VirtualDuration], seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E4: wait-freedom — primitive cost vs. sync RPC cost by network latency",
        &["latency", "HOPE primitives", "sync RPC"],
    );
    for &latency in latencies {
        let r = measure(latency, seed);
        table.row(&[
            format!("{latency}"),
            format!("{}", r.primitive_cost),
            format!("{}", r.rpc_cost),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_cost_zero_at_any_latency() {
        for millis in [0u64, 1, 10, 100] {
            let r = measure(VirtualDuration::from_millis(millis), 1);
            assert_eq!(
                r.primitive_cost,
                VirtualDuration::ZERO,
                "primitives must never wait (latency {millis} ms)"
            );
        }
    }

    #[test]
    fn rpc_cost_scales_with_latency() {
        let r1 = measure(VirtualDuration::from_millis(1), 1);
        let r10 = measure(VirtualDuration::from_millis(10), 1);
        assert_eq!(r1.rpc_cost, VirtualDuration::from_millis(2));
        assert_eq!(r10.rpc_cost, VirtualDuration::from_millis(20));
    }

    #[test]
    fn sweep_emits_one_row_per_latency() {
        let t = sweep(
            &[
                VirtualDuration::from_micros(100),
                VirtualDuration::from_millis(15),
            ],
            2,
        );
        assert_eq!(t.rows.len(), 2);
    }
}

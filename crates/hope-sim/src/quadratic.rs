//! E5 — the cost of dependency tracking vs. speculation depth.
//!
//! The paper's §6 concedes the algorithms are "quadratic in the number
//! of intervals and AIDs associated with an affirm" (expecting N to be
//! small): under per-holder registration, interval *i* re-registers with
//! every one of its *i* inherited assumptions, so a process that stacks
//! N guesses sends ~N²/2 `Guess` messages, and the affirm-driven
//! `Replace` waves are similarly triangular. This workload now measures
//! the *delta-registration* substitution (DESIGN.md S7): only the
//! earliest holder of an assumption registers, a `Replace` is applied to
//! the registrant and every later holder locally, and the same sweep
//! must come out linear — N `Guess` and N `Replace` messages.

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_runtime::NetworkConfig;
use hope_types::{AidId, ProcessId, VirtualDuration};

/// Measured message counts for one depth.
#[derive(Debug, Clone, Copy)]
pub struct QuadraticResult {
    /// Number of stacked guesses (= live intervals = AIDs).
    pub depth: u32,
    /// `Guess` registrations sent.
    pub guess_messages: u64,
    /// `Replace` messages sent by AID processes.
    pub replace_messages: u64,
    /// Total HOPE protocol messages.
    pub total_hope: u64,
}

fn encode_aids(aids: &[AidId]) -> Bytes {
    let mut out = Vec::with_capacity(aids.len() * 8);
    for aid in aids {
        out.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_aids(data: &[u8]) -> Vec<AidId> {
    data.chunks_exact(8)
        .map(|c| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(c);
            AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(raw)))
        })
        .collect()
}

/// One guesser stacks `depth` nested guesses; a definite resolver then
/// affirms every assumption. Returns the protocol message accounting.
pub fn measure(depth: u32, seed: u64) -> QuadraticResult {
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::lan())
        .build();
    let resolver = env.spawn_user("resolver", move |ctx| {
        let m = ctx.receive(None);
        let aids = decode_aids(&m.data);
        // Give the guesser time to stack every interval first.
        ctx.compute(VirtualDuration::from_millis(10));
        for aid in aids {
            ctx.affirm(aid);
        }
    });
    env.spawn_user("guesser", move |ctx| {
        let aids: Vec<AidId> = (0..depth).map(|_| ctx.aid_init()).collect();
        ctx.send(resolver, 0, encode_aids(&aids));
        for &aid in &aids {
            let _ = ctx.guess(aid);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(
        report.run.blocked.is_empty(),
        "all intervals must finalize: {:?}",
        report.run.blocked
    );
    QuadraticResult {
        depth,
        guess_messages: report.run.stats.count_kind("Guess"),
        replace_messages: report.run.stats.count_kind("Replace"),
        total_hope: report.run.stats.total_hope(),
    }
}

/// Runs [`measure`] across a depth sweep and returns the raw per-depth
/// results (the perf-baseline JSON wants numbers, not a rendered table).
pub fn sweep_results(depths: &[u32], seed: u64) -> Vec<QuadraticResult> {
    depths.iter().map(|&depth| measure(depth, seed)).collect()
}

/// Sweeps guess depth and tabulates the growth (linear under delta
/// registration; the paper's §6 formulation was quadratic).
pub fn sweep(depths: &[u32], seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E5: dependency-tracking cost vs. speculation depth (delta registration, §6)",
        &[
            "depth N",
            "Guess msgs",
            "Replace msgs",
            "total HOPE msgs",
            "msgs/N",
        ],
    );
    for r in sweep_results(depths, seed) {
        let depth = r.depth;
        table.row(&[
            format!("{depth}"),
            format!("{}", r.guess_messages),
            format!("{}", r.replace_messages),
            format!("{}", r.total_hope),
            format!("{:.1}", r.total_hope as f64 / depth.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guess_registrations_are_linear() {
        // Delta registration: each interval registers only with its fresh
        // guess (the inherited prefix is already registered), so N stacked
        // guesses cost exactly N registrations — down from N(N+1)/2.
        let r = measure(8, 1);
        assert_eq!(r.guess_messages, 8);
    }

    #[test]
    fn replace_wave_is_linear_too() {
        // Each AID has a single registrant (its earliest holder), so each
        // of the N affirms triggers exactly one Replace; the substitution
        // reaches later holders locally — down from N(N+1)/2 messages.
        let r = measure(8, 1);
        assert_eq!(r.replace_messages, 8);
    }

    #[test]
    fn growth_is_linear() {
        let a = measure(4, 1);
        let b = measure(16, 1);
        // 4× the depth must cost exactly 4× the messages (3N total: one
        // Guess, one Affirm and one Replace per assumption).
        assert_eq!(a.total_hope, 12);
        assert_eq!(b.total_hope, 48);
    }

    #[test]
    fn sweep_rows_match_depths() {
        let t = sweep(&[2, 4, 8], 1);
        assert_eq!(t.rows.len(), 3);
    }
}

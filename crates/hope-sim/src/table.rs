//! Paper-style result tables: fixed-width text plus machine-readable JSON.

use crate::json;
use std::fmt;

/// A printable results table. Cells are strings; numeric formatting is the
/// producer's job (keeps units explicit in the output).
///
/// # Examples
///
/// ```
/// use hope_sim::table::Table;
/// let mut t = Table::new("Demo", &["n", "time"]);
/// t.row(&["1", "2.0ms"]);
/// let text = t.to_string();
/// assert!(text.contains("Demo"));
/// assert!(text.contains("2.0ms"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (e.g. "Figure 2: call streaming, L=10ms").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// The table as a JSON array of objects keyed by header.
    pub fn to_json(&self) -> String {
        let objects: Vec<json::Value> = self
            .rows
            .iter()
            .map(|row| {
                json::Value::Object(
                    self.headers
                        .iter()
                        .zip(row)
                        .map(|(h, c)| (h.clone(), json::Value::String(c.clone())))
                        .collect(),
                )
            })
            .collect();
        json::to_string_pretty(&json::Value::Array(objects))
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{}  ", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Arithmetic mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The `q`-quantile (0.0–1.0) of a sample by nearest-rank; 0.0 for empty
/// input.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Population standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_rows() {
        let mut t = Table::new("T", &["a", "bee"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let text = t.to_string();
        assert!(text.contains("== T =="));
        assert!(text.contains("bee"));
        assert!(text.contains("333"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("T", &["k", "v"]);
        t.row(&["x", "1"]);
        let json = t.to_json();
        let parsed = crate::json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["k"], "x");
        assert_eq!(parsed[0]["v"], "1");
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0]);
        assert!((sd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        let p50 = percentile(&v, 0.5);
        assert!((49.0..=51.0).contains(&p50), "{p50}");
        let p99 = percentile(&v, 0.99);
        assert!((98.0..=100.0).contains(&p99), "{p99}");
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 1.0), 3.0);
    }
}

//! E-chaos — fault-injection soak: the HOPE safety invariants under a
//! lossy, duplicating, crashing network.
//!
//! The paper assumes PVM's reliable transport; DESIGN.md §3 substitutes a
//! reliable-delivery sublayer (per-link sequencing, acks, retransmission
//! with exponential backoff, receiver-side dedup) so the algorithm can be
//! exercised over an adversarial wire. This workload runs the E8
//! replication and E3 chain scenarios under seeded drops, duplicates and
//! scheduled crash/restarts and checks the theorem 5.1 safety outcomes:
//!
//! * the run reaches quiescence with every process exited (a process
//!   cannot exit while any of its intervals is speculative, so this
//!   means every interval was finalized or rolled back and re-run);
//! * no `affirm`/`deny` is lost — the committed outcome equals the
//!   fault-free run's outcome;
//! * a crashed process recovers by discarding its speculative intervals
//!   and replaying its operation log to the definite frontier.

use std::sync::{Arc, Mutex};

use hope_core::{HopeEnv, HopeReport, SpecPolicy, ThreadedHopeEnv};
use hope_runtime::{FaultPlan, LinkStats, NetworkConfig};
use hope_types::{ProcessId, VirtualDuration, VirtualTime};

use crate::chain::{self, ChainConfig};
use crate::replication::{self, ReplicationConfig};

/// Parameters of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability in `[0, 1)` that a wire transit is dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1)` that a wire transit is duplicated.
    pub duplicate_rate: f64,
    /// Schedule one crash/restart of a speculating process mid-run.
    pub crash: bool,
    /// Replicas in the replication scenario.
    pub replicas: u32,
    /// Dependent calls in the chain scenario.
    pub depth: u32,
    /// Delivery shards for the threaded scenario (DESIGN.md §10);
    /// `None` uses the machine's available parallelism. Safety outcomes
    /// must be shard-count independent.
    pub shards: Option<usize>,
    /// Speculation-control policy for every process in the run
    /// (DESIGN.md §9). The safety outcomes must hold whatever the policy:
    /// throttling changes *when* a process speculates, never what commits.
    pub policy: SpecPolicy,
    /// Seed for the network, the workload and the fault model.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_rate: 0.15,
            duplicate_rate: 0.10,
            crash: true,
            replicas: 4,
            depth: 6,
            shards: None,
            policy: SpecPolicy::AlwaysOptimistic,
            seed: 0,
        }
    }
}

/// Measured outcome of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosResult {
    /// The faulted run committed the same outcome as the fault-free run.
    pub matches_fault_free: bool,
    /// Intervals finalized in the faulted run.
    pub finalized: u64,
    /// Intervals rolled back in the faulted run.
    pub rollbacks: u64,
    /// Crash recoveries (restarts that doomed speculative state).
    pub crash_recoveries: u64,
    /// Reliable-sublayer and fault counters of the faulted run.
    pub link: LinkStats,
    /// Virtual time at quiescence of the faulted run.
    pub quiescent: VirtualTime,
}

fn fault_plan(cfg: ChaosConfig, victim: ProcessId, crash_at: VirtualTime) -> FaultPlan {
    let mut plan = FaultPlan::new()
        .drop_rate(cfg.drop_rate)
        .duplicate_rate(cfg.duplicate_rate)
        .seed(cfg.seed)
        // Keep the retransmit timer comfortably above one round trip so
        // retransmissions come from real drops, not impatience.
        .rto(VirtualDuration::from_millis(5));
    if cfg.crash {
        plan = plan.crash(victim, crash_at, VirtualDuration::from_millis(2));
    }
    plan
}

/// Asserts the safety outcomes common to both scenarios and packages the
/// counters. `lingering` names processes allowed to stay blocked in
/// `receive` at quiescence (open-loop servers); everything else must have
/// finalized its intervals and exited.
fn check(report: &HopeReport, lingering: &[&str], matches_fault_free: bool) -> ChaosResult {
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let stuck: Vec<_> = report
        .run
        .blocked
        .iter()
        .filter(|(_, name)| !lingering.contains(&name.as_str()))
        .collect();
    assert!(
        stuck.is_empty(),
        "every process must finalize its intervals and exit: {stuck:?}"
    );
    assert!(
        matches_fault_free,
        "the faulted run must commit the fault-free outcome"
    );
    ChaosResult {
        matches_fault_free,
        finalized: report.hope.finalized_intervals,
        rollbacks: report.hope.rollbacks,
        crash_recoveries: report.hope.crash_recoveries,
        link: *report.run.stats.link(),
        quiescent: report.run.now,
    }
}

/// Runs E8 replication under faults: racing replicas, an owner
/// affirming/denying version checks, and (optionally) `replica-0`
/// crashing mid-speculation. The committed `(version, value)` pair must
/// equal the fault-free run's.
pub fn run_replication(cfg: ChaosConfig) -> ChaosResult {
    let rep = ReplicationConfig {
        replicas: cfg.replicas,
        latency: VirtualDuration::from_millis(2),
        seed: cfg.seed,
    };
    let reference = replication::run(rep);
    // Spawn order is owner (pid 0), then replica-0 (pid 1), …: crash the
    // first replica inside its snapshot-fetch window (the ~4 ms GET/SNAP
    // round trip). Crashing *after* the owner validates an update would
    // retry it on re-execution — the scenario's updates are not
    // idempotent, so exactly-once under mid-speculation crashes is the
    // application's burden, not the sublayer's (the chain and threaded
    // scenarios exercise mid-speculation recovery instead).
    let plan = fault_plan(
        cfg,
        ProcessId::from_raw(1),
        VirtualTime::from_nanos(3_000_000),
    );
    let env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(rep.latency))
        .faults(plan)
        .spec_policy(cfg.policy)
        .build();
    let (faulted, report) = replication::run_in(env, rep);
    check(
        &report,
        &[],
        faulted.value == reference.value && faulted.version == reference.version,
    )
}

/// Runs the E3 streaming chain under faults: a client chains `depth`
/// dependent optimistic calls through a stage server over a lossy wire,
/// with (optionally) the client crashing mid-chain. The committed final
/// value must equal the fault-free chain's.
pub fn run_chain(cfg: ChaosConfig) -> ChaosResult {
    run_chain_inner(cfg, None).0
}

/// [`run_chain`] with the causal tracer enabled at `capacity` events,
/// additionally returning the run's exported Chrome trace object (see
/// [`crate::trace_export`]). The faulted chain is the richest single
/// scenario for a trace artifact: speculation, denies, rollbacks,
/// retransmissions and a crash recovery all appear in one timeline.
pub fn run_chain_traced(cfg: ChaosConfig, capacity: usize) -> (ChaosResult, crate::json::Value) {
    let (result, trace) = run_chain_inner(cfg, Some(capacity));
    (result, trace.expect("tracing was enabled"))
}

fn run_chain_inner(
    cfg: ChaosConfig,
    trace_capacity: Option<usize>,
) -> (ChaosResult, Option<crate::json::Value>) {
    let chain_cfg = ChainConfig {
        depth: cfg.depth,
        latency: VirtualDuration::from_millis(1),
        accuracy: 0.8,
        seed: cfg.seed,
        ..ChainConfig::default()
    };
    let reference = chain::run_streaming(chain_cfg);
    // Spawn order is the stage server (pid 0), then the client (pid 1):
    // crash the client while calls are in flight.
    let plan = fault_plan(
        cfg,
        ProcessId::from_raw(1),
        VirtualTime::from_nanos(3_000_000),
    );
    let env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(chain_cfg.latency))
        .faults(plan)
        .spec_policy(cfg.policy)
        .build();
    if let Some(capacity) = trace_capacity {
        env.enable_tracing(capacity);
    }
    let tracer = env.tracer();
    let (faulted, report) = chain::run_streaming_in(env, chain_cfg);
    // The stage server is an open-loop `serve` and lingers in `receive`.
    let result = check(&report, &["stage"], faulted.value == reference.value);
    let trace = trace_capacity.map(|_| {
        crate::trace_export::chrome_trace(
            &tracer.drain(),
            tracer.dropped(),
            &report.hope.attribution,
        )
    });
    (result, trace)
}

/// Runs a guess/affirm race on the wall-clock [`ThreadedHopeEnv`] under
/// faults: `replicas` guessers speculate on one owner's assumption while
/// the wire drops and duplicates, and (optionally) one guesser crashes.
/// Crash times in the plan are wall-clock offsets from startup.
pub fn run_threaded(cfg: ChaosConfig) -> ChaosResult {
    use bytes::Bytes;
    use std::time::Duration;

    let mut plan = FaultPlan::new()
        .drop_rate(cfg.drop_rate)
        .duplicate_rate(cfg.duplicate_rate)
        .seed(cfg.seed)
        // Wall-clock rto: keep it small so retransmits resolve quickly.
        .rto(VirtualDuration::from_millis(2));
    if cfg.crash {
        // Guessers are spawned first: pid 0 is `g0`.
        plan = plan.crash(
            ProcessId::from_raw(0),
            VirtualTime::from_nanos(5_000_000),
            VirtualDuration::from_millis(5),
        );
    }
    let mut env_builder = ThreadedHopeEnv::builder()
        .seed(cfg.seed)
        .faults(plan)
        .spec_policy(cfg.policy);
    if let Some(n) = cfg.shards {
        env_builder = env_builder.shards(n);
    }
    let env = env_builder.build();
    let count = Arc::new(Mutex::new(0u32));
    let mut guessers = Vec::new();
    for i in 0..cfg.replicas {
        let count = count.clone();
        let pid = env.spawn_user(&format!("g{i}"), move |ctx| {
            let m = ctx.receive(None);
            let x = hope_types::AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
                m.data[..8].try_into().unwrap(),
            )));
            let _ = ctx.guess(x);
            ctx.await_definite();
            if !ctx.is_replaying() {
                *count.lock().unwrap() += 1;
            }
        });
        guessers.push(pid);
    }
    env.spawn_user("owner", move |ctx| {
        let x = ctx.aid_init();
        let payload = Bytes::copy_from_slice(&x.process().as_raw().to_le_bytes());
        for &g in &guessers {
            ctx.send(g, 0, payload.clone());
        }
        ctx.compute(VirtualDuration::from_millis(3));
        ctx.affirm(x);
    });
    let report = env.run_until_quiescent(Duration::from_millis(50), Duration::from_secs(30));
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    assert!(!report.hit_event_limit, "must reach quiescence");
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    let done = *count.lock().unwrap();
    let hope = env.metrics();
    ChaosResult {
        matches_fault_free: done == cfg.replicas,
        finalized: hope.finalized_intervals,
        rollbacks: hope.rollbacks,
        crash_recoveries: hope.crash_recoveries,
        link: *report.stats.link(),
        quiescent: report.now,
    }
}

/// Sweeps drop rate over both simulator scenarios and tabulates the
/// safety outcomes and link-layer churn.
pub fn sweep(drop_rates: &[f64], cfg_base: ChaosConfig) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E-chaos: safety under drops, duplicates and crash/restarts",
        &[
            "scenario",
            "drop",
            "finalized",
            "rollbacks",
            "recoveries",
            "retransmits",
            "dedup",
            "correct",
        ],
    );
    for &drop_rate in drop_rates {
        let cfg = ChaosConfig {
            drop_rate,
            ..cfg_base
        };
        for (name, r) in [
            ("replication", run_replication(cfg)),
            ("chain", run_chain(cfg)),
        ] {
            table.row(&[
                name.to_string(),
                format!("{drop_rate:.2}"),
                format!("{}", r.finalized),
                format!("{}", r.rollbacks),
                format!("{}", r.crash_recoveries),
                format!("{}", r.link.retransmits),
                format!("{}", r.link.dedup_dropped),
                format!("{}", r.matches_fault_free),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_survives_drops_dups_and_a_crash() {
        let r = run_replication(ChaosConfig::default());
        assert!(r.matches_fault_free);
        assert!(r.finalized > 0);
        assert!(r.link.fault_dropped > 0, "the wire must actually be lossy");
        assert!(r.link.retransmits > 0, "drops must be repaired");
    }

    #[test]
    fn chain_survives_drops_dups_and_a_crash() {
        let r = run_chain(ChaosConfig::default());
        assert!(r.matches_fault_free);
        assert!(r.finalized > 0);
    }

    #[test]
    fn duplicates_are_suppressed_by_dedup() {
        let r = run_replication(ChaosConfig {
            drop_rate: 0.0,
            duplicate_rate: 0.4,
            crash: false,
            ..ChaosConfig::default()
        });
        assert!(r.matches_fault_free);
        assert!(r.link.duplicated > 0);
        assert!(
            r.link.dedup_dropped > 0,
            "wire duplicates must be absorbed: {:?}",
            r.link
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let cfg = ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        };
        let a = run_replication(cfg);
        let b = run_replication(cfg);
        assert_eq!(a.quiescent, b.quiescent);
        assert_eq!(a.link, b.link);
        assert_eq!(a.rollbacks, b.rollbacks);
    }

    /// Tracing is pure observation: a traced run must be event-for-event
    /// the run the untraced simulator produces, and its export must pass
    /// the schema check with a non-empty timeline that includes the
    /// rollback events this scenario is guaranteed to generate.
    #[test]
    fn traced_chain_is_identical_and_exports_a_valid_trace() {
        use crate::json::Value;
        let cfg = ChaosConfig::default();
        let plain = run_chain(cfg);
        let (traced, trace) = run_chain_traced(cfg, 1 << 16);
        assert_eq!(plain.quiescent, traced.quiescent);
        assert_eq!(plain.rollbacks, traced.rollbacks);
        assert_eq!(plain.finalized, traced.finalized);
        assert_eq!(plain.link, traced.link);
        crate::trace_export::validate_chrome_trace(&trace).unwrap();
        let events = match trace.get("traceEvents") {
            Value::Array(events) => events,
            _ => panic!("traceEvents missing"),
        };
        assert!(!events.is_empty());
        assert!(
            events
                .iter()
                .any(|e| e.get("name").as_str() == Some("rollback")),
            "the faulted chain must trace its rollbacks"
        );
        assert!(
            matches!(trace["otherData"]["attribution"], Value::Array(ref rows) if !rows.is_empty()),
            "rollbacks must be attributed in the artifact"
        );
    }

    #[test]
    fn threaded_chaos_commits_every_guess() {
        let r = run_threaded(ChaosConfig {
            drop_rate: 0.1,
            duplicate_rate: 0.1,
            ..ChaosConfig::default()
        });
        assert!(r.matches_fault_free);
        assert!(r.finalized > 0);
    }

    /// DESIGN.md §9: adaptive throttling under drops, duplicates and a
    /// crash/restart must preserve the theorem 5.1 safety outcomes — the
    /// faulted runs commit the fault-free outcomes, nothing livelocks,
    /// and crash recovery still lands on the definite frontier. A low
    /// threshold makes a single observed deny actually throttle, so the
    /// parked-guess paths run under fault pressure, not just in the
    /// clean-network tests.
    #[test]
    fn adaptive_policy_is_safe_under_chaos() {
        let policy = SpecPolicy::adaptive(0.1, 4, 0.05).unwrap();
        for seed in [0, 7] {
            let cfg = ChaosConfig {
                policy,
                seed,
                ..ChaosConfig::default()
            };
            let rep = run_replication(cfg);
            assert!(rep.matches_fault_free, "replication seed {seed}");
            let chain = run_chain(cfg);
            assert!(chain.matches_fault_free, "chain seed {seed}");
            assert!(chain.finalized > 0);
        }
        let threaded = run_threaded(ChaosConfig {
            policy,
            drop_rate: 0.1,
            duplicate_rate: 0.1,
            ..ChaosConfig::default()
        });
        assert!(threaded.matches_fault_free, "threaded chaos under adaptive");
    }

    /// DESIGN.md §10: the number of delivery shards is a performance
    /// knob, never a semantics knob. The faulted threaded scenario must
    /// commit the fault-free outcome at every shard count — the E-chaos
    /// soak's shard-count sweep.
    #[test]
    fn threaded_chaos_outcome_is_shard_count_independent() {
        for shards in [1, 2, 4] {
            let r = run_threaded(ChaosConfig {
                drop_rate: 0.1,
                duplicate_rate: 0.1,
                shards: Some(shards),
                ..ChaosConfig::default()
            });
            assert!(
                r.matches_fault_free,
                "shards({shards}) must commit every guess"
            );
            assert!(r.finalized > 0, "shards({shards}) must finalize work");
        }
    }

    #[test]
    fn sweep_rows_all_correct() {
        let t = sweep(
            &[0.0, 0.15],
            ChaosConfig {
                replicas: 3,
                depth: 4,
                ..ChaosConfig::default()
            },
        );
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows.iter().all(|r| r[7] == "true"));
    }
}

//! E-net: a socket-level network chaos proxy.
//!
//! [`NetChaos`] sits between a dialing node and a real TCP listener and
//! misbehaves on command: one-way or full partitions (bytes black-holed
//! while the socket stays "connected" — the failure heartbeats exist to
//! catch), injected per-chunk latency (slow peers), hard connection
//! resets, and *mid-frame* cuts (the stream is severed after an exact
//! byte budget, leaving a partial frame in the peer's reader — the case
//! the length-prefixed codec must reject and the reconnect machinery
//! must recover from). Cut points can be drawn from a seeded schedule
//! ([`seeded_cut_points`]) so soak runs are reproducible.
//!
//! The proxy is transport-agnostic — it forwards opaque bytes — so the
//! same tool drives the `hope-bench` cluster partition-heal scenario and
//! the regression tests here.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Byte budget value meaning "no scheduled cut".
const NO_CUT: u64 = u64::MAX;

struct Ctl {
    shutdown: AtomicBool,
    /// Black-hole client→server bytes (one-way partition).
    drop_a_to_b: AtomicBool,
    /// Black-hole server→client bytes.
    drop_b_to_a: AtomicBool,
    /// Refuse (accept-then-reset) new connections — set during full
    /// partitions so reconnect dials fail fast instead of stalling in
    /// their handshake.
    refuse_new: AtomicBool,
    /// Injected delay per forwarded chunk, in nanoseconds.
    latency_nanos: AtomicU64,
    /// Remaining bytes until a one-shot mid-stream cut ([`NO_CUT`] off).
    cut_budget: Mutex<u64>,
    /// Total payload bytes forwarded (both directions).
    forwarded: AtomicU64,
    /// Connections accepted so far.
    accepted: AtomicU64,
    /// Live proxied streams, for hard resets.
    live: Mutex<Vec<TcpStream>>,
}

/// A chaos TCP proxy: listens on an ephemeral localhost port and
/// forwards every accepted connection to `target`, subject to the
/// currently-commanded misbehaviour. Point the *dialing* node's
/// directory entry for its peer at [`NetChaos::frontend`] and the link
/// runs through the proxy.
pub struct NetChaos {
    ctl: Arc<Ctl>,
    frontend: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetChaos {
    /// Starts the proxy in front of `target`.
    pub fn spawn(target: SocketAddr) -> io::Result<NetChaos> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let frontend = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let ctl = Arc::new(Ctl {
            shutdown: AtomicBool::new(false),
            drop_a_to_b: AtomicBool::new(false),
            drop_b_to_a: AtomicBool::new(false),
            refuse_new: AtomicBool::new(false),
            latency_nanos: AtomicU64::new(0),
            cut_budget: Mutex::new(NO_CUT),
            forwarded: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
        });
        let accept_ctl = Arc::clone(&ctl);
        let accept_thread = std::thread::spawn(move || accept_loop(accept_ctl, listener, target));
        Ok(NetChaos {
            ctl,
            frontend,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address dialers should connect to instead of the real target.
    pub fn frontend(&self) -> SocketAddr {
        self.frontend
    }

    /// Full partition: black-hole both directions on live connections
    /// and reset any new connection attempt. Existing sockets stay
    /// "connected" — only heartbeat timeouts can tell.
    pub fn partition(&self) {
        self.ctl.drop_a_to_b.store(true, Ordering::Release);
        self.ctl.drop_b_to_a.store(true, Ordering::Release);
        self.ctl.refuse_new.store(true, Ordering::Release);
    }

    /// One-way partition: black-hole client→server when `a_to_b`, the
    /// reverse otherwise. The other direction keeps flowing.
    pub fn partition_one_way(&self, a_to_b: bool) {
        if a_to_b {
            self.ctl.drop_a_to_b.store(true, Ordering::Release);
        } else {
            self.ctl.drop_b_to_a.store(true, Ordering::Release);
        }
    }

    /// Heals all partitions and accepts new connections again.
    pub fn heal(&self) {
        self.ctl.drop_a_to_b.store(false, Ordering::Release);
        self.ctl.drop_b_to_a.store(false, Ordering::Release);
        self.ctl.refuse_new.store(false, Ordering::Release);
    }

    /// Injects `latency` before each forwarded chunk (slow-peer mode;
    /// zero disables).
    pub fn set_latency(&self, latency: Duration) {
        self.ctl.latency_nanos.store(
            latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Release,
        );
    }

    /// Arms a one-shot cut: after exactly `bytes` more forwarded payload
    /// bytes, the carrying connection is severed — typically mid-frame.
    pub fn cut_after(&self, bytes: u64) {
        *self.ctl.cut_budget.lock().unwrap() = bytes;
    }

    /// Hard-resets every live proxied connection right now (seeded
    /// connection-reset injection: call at seeded instants).
    pub fn kill_all(&self) {
        let live = self.ctl.live.lock().unwrap();
        for stream in live.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Total payload bytes forwarded in both directions.
    pub fn forwarded_bytes(&self) -> u64 {
        self.ctl.forwarded.load(Ordering::Acquire)
    }

    /// Connections accepted since the proxy started.
    pub fn connections(&self) -> u64 {
        self.ctl.accepted.load(Ordering::Acquire)
    }
}

impl Drop for NetChaos {
    fn drop(&mut self) {
        self.ctl.shutdown.store(true, Ordering::Release);
        self.kill_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// A deterministic schedule of `count` cut points, each in `[lo, hi)`
/// bytes: the seeded side of "seeded connection resets". Feed each value
/// to [`NetChaos::cut_after`] once the previous cut has happened.
pub fn seeded_cut_points(seed: u64, count: usize, lo: u64, hi: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6375_745f_7365_6564);
    (0..count)
        .map(|_| {
            if hi <= lo {
                lo
            } else {
                rng.random_range(lo..hi)
            }
        })
        .collect()
}

fn accept_loop(ctl: Arc<Ctl>, listener: TcpListener, target: SocketAddr) {
    while !ctl.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                if ctl.refuse_new.load(Ordering::Acquire) {
                    // Connection-reset injection: accept, then slam shut.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_millis(500))
                else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                ctl.accepted.fetch_add(1, Ordering::AcqRel);
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                register(&ctl, &client);
                register(&ctl, &server);
                spawn_pump(&ctl, &client, &server, Dir::AToB);
                spawn_pump(&ctl, &server, &client, Dir::BToA);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn register(ctl: &Ctl, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        let mut live = ctl.live.lock().unwrap();
        // Opportunistic GC of long-dead entries to keep the list small.
        if live.len() > 64 {
            live.clear();
        }
        live.push(clone);
    }
}

#[derive(Clone, Copy)]
enum Dir {
    AToB,
    BToA,
}

fn spawn_pump(ctl: &Arc<Ctl>, from: &TcpStream, to: &TcpStream, dir: Dir) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let ctl = Arc::clone(ctl);
    std::thread::spawn(move || pump(ctl, from, to, dir));
}

fn pump(ctl: Arc<Ctl>, mut from: TcpStream, mut to: TcpStream, dir: Dir) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 8192];
    while !ctl.shutdown.load(Ordering::Acquire) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                ctl.forwarded.fetch_add(n as u64, Ordering::AcqRel);
                let dropped = match dir {
                    Dir::AToB => ctl.drop_a_to_b.load(Ordering::Acquire),
                    Dir::BToA => ctl.drop_b_to_a.load(Ordering::Acquire),
                };
                if dropped {
                    continue; // black hole: consume, never forward
                }
                let latency = ctl.latency_nanos.load(Ordering::Acquire);
                if latency > 0 {
                    std::thread::sleep(Duration::from_nanos(latency));
                }
                // One-shot mid-frame cut: forward exactly the remaining
                // budget, then sever both directions.
                let cut_now = {
                    let mut budget = ctl.cut_budget.lock().unwrap();
                    if *budget == NO_CUT {
                        None
                    } else if (n as u64) < *budget {
                        *budget -= n as u64;
                        None
                    } else {
                        let keep = *budget as usize;
                        *budget = NO_CUT;
                        Some(keep)
                    }
                };
                match cut_now {
                    None => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    Some(keep) => {
                        let _ = to.write_all(&buf[..keep]);
                        break;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    use bytes::Bytes;
    use hope_runtime::{BackoffPolicy, HeartbeatPolicy, NetConfig, NetTransport, NodeDirectory};
    use hope_types::net::NodeId;

    /// A trivial echo server; returns its address.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(len) = stream.read(&mut buf) {
                        if len == 0 || stream.write_all(&buf[..len]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn forwards_transparently_when_clean() {
        let proxy = NetChaos::spawn(echo_server()).unwrap();
        let mut client = TcpStream::connect(proxy.frontend()).unwrap();
        client.write_all(b"hello through the proxy").unwrap();
        let mut got = [0u8; 23];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello through the proxy");
        assert!(proxy.forwarded_bytes() >= 46, "both directions counted");
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn one_way_partition_black_holes_one_direction_only() {
        let proxy = NetChaos::spawn(echo_server()).unwrap();
        let mut client = TcpStream::connect(proxy.frontend()).unwrap();
        client.write_all(b"before").unwrap();
        let mut got = [0u8; 6];
        client.read_exact(&mut got).unwrap();

        proxy.partition_one_way(true); // client→server vanishes
        client.write_all(b"lost!!").unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 6];
        assert!(
            client.read_exact(&mut buf).is_err(),
            "echo of black-holed bytes must never arrive"
        );

        proxy.heal();
        client.write_all(b"after!").unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"after!", "healed link flows again");
    }

    #[test]
    fn cut_after_severs_mid_stream() {
        let proxy = NetChaos::spawn(echo_server()).unwrap();
        let mut client = TcpStream::connect(proxy.frontend()).unwrap();
        proxy.cut_after(10); // mid-"frame" for a 20-byte write
        client.write_all(&[0xAB; 20]).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match client.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert!(
            got.len() <= 10,
            "at most the pre-cut bytes echo back, got {}",
            got.len()
        );
    }

    #[test]
    fn seeded_cut_points_are_deterministic_and_bounded() {
        let a = seeded_cut_points(42, 8, 100, 5_000);
        let b = seeded_cut_points(42, 8, 100, 5_000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (100..5_000).contains(&c)));
        assert_ne!(a, seeded_cut_points(43, 8, 100, 5_000));
    }

    /// The regression the tentpole demands: a transport link running
    /// through the proxy survives a full partition — sends park, the
    /// supervisor reconnects after heal, and the receiver observes the
    /// whole stream exactly once, in order.
    #[test]
    fn transport_partition_heal_preserves_exactly_once_order() {
        fn n(raw: u16) -> NodeId {
            NodeId::from_raw(raw)
        }
        // Node 2's real listener, fronted by the proxy for node 1's dials.
        let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let proxy = NetChaos::spawn(l2.local_addr().unwrap()).unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir1 = NodeDirectory::new()
            .with_node(n(1), l1.local_addr().unwrap())
            .with_node(n(2), proxy.frontend());
        let dir2 = NodeDirectory::new()
            .with_node(n(1), l1.local_addr().unwrap())
            .with_node(n(2), l2.local_addr().unwrap());
        let fast = |node: NodeId, dir: NodeDirectory| {
            let mut cfg = NetConfig::new(node, dir);
            cfg.initial_rto_nanos = 20_000_000;
            cfg.tick_nanos = 1_000_000;
            cfg.backoff = BackoffPolicy {
                base_nanos: 2_000_000,
                cap_nanos: 50_000_000,
                seed: u64::from(node.as_raw()),
            };
            cfg.heartbeat = HeartbeatPolicy {
                interval_nanos: 20_000_000,
                timeout_nanos: 150_000_000,
            };
            cfg
        };
        let (tx, rx) = mpsc::channel::<u32>();
        let t1 = NetTransport::bind_on(fast(n(1), dir1), l1, |_, _| {}).unwrap();
        let _t2 = NetTransport::bind_on(fast(n(2), dir2), l2, move |_, b| {
            tx.send(u32::from_le_bytes(b[..4].try_into().unwrap()))
                .unwrap();
        })
        .unwrap();
        assert!(t1.wait_link_up(n(2), Duration::from_secs(5)));

        for i in 1u32..=50 {
            t1.send(n(2), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 50 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }

        proxy.partition();
        // Sends during the outage park (possibly after a few slip onto
        // the dead socket — they retransmit after heal).
        for i in 51u32..=100 {
            t1.send(n(2), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        // Wait until the heartbeat timeout declares the link down.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t1.link_up(n(2)) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!t1.link_up(n(2)), "partition detected via heartbeats");

        proxy.heal();
        assert!(t1.wait_link_up(n(2), Duration::from_secs(10)), "reconnect");
        while got.len() < 100 {
            got.push(
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("post-heal delivery"),
            );
        }
        assert_eq!(
            got,
            (1..=100).collect::<Vec<u32>>(),
            "exactly once, in order"
        );
        assert_eq!(t1.wait_drained(Duration::from_secs(10)), 0);
        let stats = t1.stats();
        assert!(stats.reconnects >= 1, "{stats}");
        assert!(stats.link_down_events >= 1);
        assert!(proxy.connections() >= 2, "reconnect went through the proxy");
    }
}

//! E9 — a mixed soak workload: many streaming clients, multiple servers,
//! jittered links, imperfect predictors. Not a figure from the paper but
//! the load profile a deployed HOPE would face; it measures client call
//! latency percentiles and validates global correctness under sustained
//! rollback pressure.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::HopeEnv;
use hope_rpc::{RpcServer, StreamingClient};
use hope_runtime::NetworkConfig;
use hope_types::{VirtualDuration, VirtualTime};

/// Parameters of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Concurrent streaming clients.
    pub clients: u32,
    /// Echo-style servers, assigned round-robin.
    pub servers: u32,
    /// Calls per client.
    pub calls_per_client: u32,
    /// Predictor accuracy in [0, 1].
    pub accuracy: f64,
    /// Latency jitter bounds.
    pub latency_min: VirtualDuration,
    /// Upper jitter bound.
    pub latency_max: VirtualDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 8,
            servers: 2,
            calls_per_client: 10,
            accuracy: 0.9,
            latency_min: VirtualDuration::from_micros(200),
            latency_max: VirtualDuration::from_millis(2),
            seed: 0,
        }
    }
}

/// Measured outcome of one soak run.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Per-call committed latencies (ms), across all clients.
    pub call_latencies_ms: Vec<f64>,
    /// Total rollbacks.
    pub rollbacks: u64,
    /// Virtual time at quiescence.
    pub quiescent: VirtualTime,
    /// True if every client's final accumulator matched the deterministic
    /// reference.
    pub all_correct: bool,
}

/// Stage function (same as the chain workload's, re-exported shape).
fn mix(x: u64) -> u64 {
    crate::chain::stage_fn(x)
}

/// Runs the soak. Each client chains `calls_per_client` dependent calls
/// through its round-robin server with an accuracy-degraded predictor.
pub fn run(cfg: SoakConfig) -> SoakResult {
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::uniform(cfg.latency_min, cfg.latency_max))
        .build();
    let mut servers = Vec::new();
    for s in 0..cfg.servers {
        let pid = env.spawn_user(&format!("server-{s}"), |ctx| {
            RpcServer::serve(ctx, |ctx, _method, body| {
                ctx.compute(VirtualDuration::from_micros(20));
                let x = u64::from_le_bytes(body[..8].try_into().unwrap());
                Bytes::from(mix(x).to_le_bytes().to_vec())
            });
        });
        servers.push(pid);
    }
    // Keyed by client, last write wins: a rollback arriving after the body
    // finished re-executes it, and the re-execution's record supersedes.
    let latencies: Arc<Mutex<BTreeMap<u32, Vec<f64>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let correct: Arc<Mutex<BTreeMap<u32, bool>>> = Arc::new(Mutex::new(BTreeMap::new()));
    for c in 0..cfg.clients {
        let server = servers[(c % cfg.servers) as usize];
        let latencies = latencies.clone();
        let correct = correct.clone();
        let calls = cfg.calls_per_client;
        let accuracy = cfg.accuracy;
        env.spawn_user(&format!("client-{c}"), move |ctx| {
            let mut value = 1 + c as u64;
            let expected = {
                let mut v = value;
                for _ in 0..calls {
                    v = mix(v);
                }
                v
            };
            let mut my_latencies = Vec::new();
            for _ in 0..calls {
                ctx.compute(VirtualDuration::from_micros(50));
                let start = ctx.now();
                let truth = mix(value);
                let coin = (ctx.random() as f64) / (u64::MAX as f64);
                let predicted = if coin < accuracy { truth } else { !truth };
                let promise = StreamingClient::call(
                    ctx,
                    server,
                    0,
                    Bytes::from(value.to_le_bytes().to_vec()),
                    Bytes::from(predicted.to_le_bytes().to_vec()),
                );
                let (reply, _) = promise.redeem(ctx);
                value = u64::from_le_bytes(reply[..8].try_into().unwrap());
                let elapsed = ctx.now() - start;
                if !ctx.is_replaying() {
                    my_latencies.push(elapsed.as_millis_f64());
                }
            }
            if !ctx.is_replaying() {
                latencies.lock().unwrap().insert(c, my_latencies.clone());
                correct.lock().unwrap().insert(c, value == expected);
            }
        });
    }
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let call_latencies_ms: Vec<f64> = latencies
        .lock()
        .unwrap()
        .values()
        .flatten()
        .copied()
        .collect();
    let flags = correct.lock().unwrap().clone();
    SoakResult {
        call_latencies_ms,
        rollbacks: report.hope.rollbacks,
        quiescent: report.run.now,
        all_correct: flags.len() == cfg.clients as usize && flags.values().all(|&b| b),
    }
}

/// Sweeps predictor accuracy and tabulates latency percentiles.
pub fn sweep(accuracies: &[f64], cfg_base: SoakConfig) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E9: mixed soak — call latency percentiles vs. predictor accuracy",
        &["accuracy", "p50", "p90", "p99", "rollbacks", "correct"],
    );
    for &accuracy in accuracies {
        let r = run(SoakConfig {
            accuracy,
            ..cfg_base
        });
        let p = |q| crate::table::percentile(&r.call_latencies_ms, q);
        table.row(&[
            format!("{accuracy:.2}"),
            format!("{:.3}ms", p(0.5)),
            format!("{:.3}ms", p(0.9)),
            format!("{:.3}ms", p(0.99)),
            format!("{}", r.rollbacks),
            format!("{}", r.all_correct),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_zero_latency_calls() {
        let r = run(SoakConfig {
            accuracy: 1.0,
            clients: 4,
            calls_per_client: 5,
            ..SoakConfig::default()
        });
        assert!(r.all_correct);
        assert_eq!(r.rollbacks, 0);
        assert!(
            r.call_latencies_ms.iter().all(|&l| l == 0.0),
            "every committed call should be wait-free"
        );
    }

    #[test]
    fn soak_stays_correct_under_heavy_misprediction() {
        let r = run(SoakConfig {
            accuracy: 0.3,
            clients: 6,
            calls_per_client: 8,
            seed: 9,
            ..SoakConfig::default()
        });
        assert!(r.all_correct, "rollback storms must not corrupt results");
        assert!(r.rollbacks > 0);
    }

    #[test]
    fn latency_percentiles_degrade_with_accuracy() {
        let good = run(SoakConfig {
            accuracy: 1.0,
            ..SoakConfig::default()
        });
        let bad = run(SoakConfig {
            accuracy: 0.0,
            ..SoakConfig::default()
        });
        let p99_good = crate::table::percentile(&good.call_latencies_ms, 0.99);
        let p99_bad = crate::table::percentile(&bad.call_latencies_ms, 0.99);
        assert!(p99_bad > p99_good);
        assert!(bad.all_correct);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SoakConfig {
            accuracy: 0.7,
            seed: 11,
            ..SoakConfig::default()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a.call_latencies_ms, b.call_latencies_ms);
        assert_eq!(a.rollbacks, b.rollbacks);
    }

    #[test]
    fn sweep_rows() {
        let t = sweep(
            &[1.0, 0.5],
            SoakConfig {
                clients: 3,
                calls_per_client: 4,
                ..SoakConfig::default()
            },
        );
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r[5] == "true"));
    }
}

//! E-disk — storage-fault soak: durable op-log recovery under crashes
//! whose disk images tear, lose the fsync window, or take bit flips.
//!
//! The paper's prototype made rollback survivable with UNIX process
//! images; DESIGN.md S6 substitutes a segmented, CRC32-framed write-ahead
//! log with periodic checkpoints. This workload runs a value-committing
//! ledger — an owner affirms or denies one assumption per round, workers
//! fold the affirmed round values into a commutative total — while one
//! worker crashes mid-run *with an injected storage fault*, and checks:
//!
//! * **Theorem 5.1 safety**: the faulted run commits exactly the
//!   fault-free totals (no affirm/deny lost, despite the corrupt disk);
//! * **frontier equivalence**: every recovery's op log reaches at least
//!   the definite frontier recorded at crash time
//!   (`frontier_violations == 0`);
//! * **no recovery panic**: arbitrary torn/flipped bytes never crash the
//!   recovery path;
//! * **checkpoint GC**: live WAL segments stay bounded even as rounds
//!   accumulate.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::{DurableConfig, DurableSnapshot, HopeEnv, SyncPolicy, ThreadedHopeEnv};
use hope_runtime::{FaultPlan, NetworkConfig, StorageFaultPlan};
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

/// Parameters of one disk-chaos run.
#[derive(Debug, Clone, Copy)]
pub struct DiskChaosConfig {
    /// Worker processes folding round values.
    pub workers: u32,
    /// Rounds (one assumption affirmed or denied per round).
    pub rounds: u32,
    /// Probability a wire transit is dropped.
    pub drop_rate: f64,
    /// Probability a wire transit is duplicated.
    pub duplicate_rate: f64,
    /// Crash `w0` mid-run with an injected storage fault.
    pub crash: bool,
    /// WAL segment size — small, to force rotations and GC.
    pub segment_bytes: usize,
    /// Checkpoint cadence in WAL events.
    pub checkpoint_every: usize,
    /// Seed for the network, workload, faults and storage faults.
    pub seed: u64,
}

impl Default for DiskChaosConfig {
    fn default() -> Self {
        DiskChaosConfig {
            workers: 3,
            rounds: 12,
            drop_rate: 0.05,
            duplicate_rate: 0.05,
            crash: true,
            segment_bytes: 256,
            checkpoint_every: 8,
            seed: 0,
        }
    }
}

/// Measured outcome of one disk-chaos run.
#[derive(Debug, Clone, Copy)]
pub struct DiskChaosResult {
    /// The faulted run committed the fault-free totals.
    pub matches_fault_free: bool,
    /// Intervals finalized in the faulted run.
    pub finalized: u64,
    /// Intervals rolled back.
    pub rollbacks: u64,
    /// Crash recoveries performed.
    pub crash_recoveries: u64,
    /// Durable-store counters (recoveries, GC, frontier audit).
    pub store: DurableSnapshot,
    /// Virtual time at quiescence of the faulted run.
    pub quiescent: VirtualTime,
}

/// SplitMix64 finalizer: the deterministic per-round value stream.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0x243f_6a88_85a3_08d3);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether the owner affirms round `r` (¾ of rounds) or denies it.
fn keep(seed: u64, r: u32) -> bool {
    !mix(seed ^ 0x6b65_6570, r as u64).is_multiple_of(4)
}

/// The total a worker should commit: affirmed rounds folded commutatively.
fn expected_total(seed: u64, rounds: u32) -> u64 {
    (0..rounds)
        .filter(|&r| keep(seed, r))
        .fold(0u64, |acc, r| acc.wrapping_add(mix(seed, r as u64)))
}

fn round_payload(aid: AidId, value: u64) -> Bytes {
    let mut data = Vec::with_capacity(16);
    data.extend_from_slice(&aid.process().as_raw().to_le_bytes());
    data.extend_from_slice(&value.to_le_bytes());
    Bytes::from(data)
}

fn parse_round(data: &[u8]) -> (AidId, u64) {
    let aid = AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
        data[..8].try_into().expect("8-byte aid"),
    )));
    let value = u64::from_le_bytes(data[8..16].try_into().expect("8-byte value"));
    (aid, value)
}

/// The storage-fault mix injected at crash time: most crash images tear
/// or lose the fsync window; some take a bit flip.
pub fn storage_plan() -> StorageFaultPlan {
    StorageFaultPlan::default()
        .torn_final_record(0.4)
        .lost_sync_window(0.3)
        .bit_flip(0.2)
}

fn durable_config(cfg: DiskChaosConfig) -> DurableConfig {
    DurableConfig {
        segment_bytes: cfg.segment_bytes,
        checkpoint_every: cfg.checkpoint_every,
        sync_policy: SyncPolicy::Visible,
    }
}

/// Spawns the ledger workload: `workers` fold processes (pids `0..n`),
/// then the owner (pid `n`). Returns the shared committed-totals map,
/// keyed by worker index.
fn spawn_ledger(env: &mut HopeEnv, cfg: DiskChaosConfig) -> Arc<Mutex<BTreeMap<u32, u64>>> {
    let totals: Arc<Mutex<BTreeMap<u32, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let mut worker_pids = Vec::new();
    for w in 0..cfg.workers {
        let totals = totals.clone();
        let rounds = cfg.rounds;
        let pid = env.spawn_user(&format!("w{w}"), move |ctx| {
            let mut total = 0u64;
            // Delivery across a crash is at-least-once: a round retransmitted
            // while the worker was down can arrive twice, so dedup on the
            // channel number (the round index) before folding.
            let mut seen = vec![false; rounds as usize];
            let mut remaining = rounds;
            while remaining > 0 {
                let m = ctx.receive(None);
                let r = m.channel as usize;
                if r >= seen.len() || seen[r] {
                    continue;
                }
                seen[r] = true;
                remaining -= 1;
                let (aid, value) = parse_round(&m.data);
                if ctx.guess(aid) {
                    // Optimistically fold the round in; a deny rolls this
                    // interval back and the replayed guess excludes it.
                    total = total.wrapping_add(value);
                }
                // Local work after the fold: Compute ops are not
                // externally visible, so under `SyncPolicy::Visible` they
                // ride in the unsynced WAL window — exactly the bytes a
                // torn write or bit flip corrupts at crash time.
                ctx.compute(VirtualDuration::from_micros(200));
            }
            ctx.await_definite();
            if !ctx.is_replaying() {
                totals.lock().unwrap().insert(w, total);
            }
        });
        worker_pids.push(pid);
    }
    let seed = cfg.seed;
    let rounds = cfg.rounds;
    env.spawn_user("owner", move |ctx| {
        for r in 0..rounds {
            let x = ctx.aid_init();
            let payload = round_payload(x, mix(seed, r as u64));
            for &w in &worker_pids {
                ctx.send(w, r, payload.clone());
            }
            ctx.compute(VirtualDuration::from_millis(1));
            if keep(seed, r) {
                ctx.affirm(x);
            } else {
                ctx.deny(x);
            }
        }
    });
    totals
}

/// Runs the ledger on the simulator with a durable store, one crashing
/// worker, and the configured storage-fault mix; checks every committed
/// total against the closed-form expectation.
pub fn run_ledger(cfg: DiskChaosConfig) -> DiskChaosResult {
    let mut plan = FaultPlan::new()
        .drop_rate(cfg.drop_rate)
        .duplicate_rate(cfg.duplicate_rate)
        .seed(cfg.seed)
        .rto(VirtualDuration::from_millis(5))
        .storage(storage_plan());
    if cfg.crash {
        // Workers are spawned first: crash w0 mid-run, disk fault and all.
        plan = plan.crash(
            ProcessId::from_raw(0),
            VirtualTime::from_nanos(3_000_000),
            VirtualDuration::from_millis(2),
        );
    }
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(VirtualDuration::from_millis(1)))
        .faults(plan)
        .durable(durable_config(cfg))
        .build();
    let totals = spawn_ledger(&mut env, cfg);
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(
        report.run.blocked.is_empty(),
        "every process must finalize and exit: {:?}",
        report.run.blocked
    );
    let store = env.store_stats().expect("durable storage configured");
    assert_eq!(
        store.frontier_violations, 0,
        "recovery fell short of the definite frontier: {store:?}"
    );
    let want = expected_total(cfg.seed, cfg.rounds);
    let totals = totals.lock().unwrap();
    let matches_fault_free =
        totals.len() == cfg.workers as usize && totals.values().all(|&t| t == want);
    assert!(
        matches_fault_free,
        "committed totals {totals:?} != expected {want} (Theorem 5.1 violation)"
    );
    DiskChaosResult {
        matches_fault_free,
        finalized: report.hope.finalized_intervals,
        rollbacks: report.hope.rollbacks,
        crash_recoveries: report.hope.crash_recoveries,
        store,
        quiescent: report.run.now,
    }
}

/// Runs the guess/affirm ledger on the wall-clock [`ThreadedHopeEnv`]
/// with durable stores and a crashing guesser whose disk image takes a
/// storage fault. Crash times are wall-clock offsets from startup.
pub fn run_threaded(cfg: DiskChaosConfig) -> DiskChaosResult {
    use std::time::Duration;

    let mut plan = FaultPlan::new()
        .drop_rate(cfg.drop_rate)
        .duplicate_rate(cfg.duplicate_rate)
        .seed(cfg.seed)
        .rto(VirtualDuration::from_millis(2))
        .storage(storage_plan());
    if cfg.crash {
        // 1.5 ms into the run: inside the owner's 3 ms speculation window,
        // so the crashed guesser is holding a speculative interval and must
        // recover it from the (storage-faulted) durable log.
        plan = plan.crash(
            ProcessId::from_raw(0),
            VirtualTime::from_nanos(1_500_000),
            VirtualDuration::from_millis(5),
        );
    }
    let env = ThreadedHopeEnv::builder()
        .seed(cfg.seed)
        .faults(plan)
        .durable(durable_config(cfg))
        .build();
    let count = Arc::new(Mutex::new(0u32));
    let mut guessers = Vec::new();
    for i in 0..cfg.workers {
        let count = count.clone();
        let pid = env.spawn_user(&format!("g{i}"), move |ctx| {
            let m = ctx.receive(None);
            let (x, _) = parse_round(&m.data);
            let _ = ctx.guess(x);
            ctx.await_definite();
            if !ctx.is_replaying() {
                *count.lock().unwrap() += 1;
            }
        });
        guessers.push(pid);
    }
    let seed = cfg.seed;
    env.spawn_user("owner", move |ctx| {
        let x = ctx.aid_init();
        let payload = round_payload(x, mix(seed, 0));
        for &g in &guessers {
            ctx.send(g, 0, payload.clone());
        }
        ctx.compute(VirtualDuration::from_millis(3));
        ctx.affirm(x);
    });
    let report = env.run_until_quiescent(Duration::from_millis(50), Duration::from_secs(30));
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    assert!(!report.hit_event_limit, "must reach quiescence");
    assert!(report.blocked.is_empty(), "{:?}", report.blocked);
    let store = env.store_stats().expect("durable storage configured");
    assert_eq!(
        store.frontier_violations, 0,
        "recovery fell short of the definite frontier: {store:?}"
    );
    let done = *count.lock().unwrap();
    let hope = env.metrics();
    DiskChaosResult {
        matches_fault_free: done == cfg.workers,
        finalized: hope.finalized_intervals,
        rollbacks: hope.rollbacks,
        crash_recoveries: hope.crash_recoveries,
        store,
        quiescent: report.now,
    }
}

/// Aggregate outcome of a multi-seed soak.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoakOutcome {
    /// Seeds run.
    pub runs: u64,
    /// Runs whose committed totals matched the fault-free expectation.
    pub correct: u64,
    /// Total store recoveries performed.
    pub recoveries: u64,
    /// Recoveries that hit corruption and dropped a suffix.
    pub corrupt_recoveries: u64,
    /// Crash images that had a storage fault injected.
    pub faults_injected: u64,
    /// Frontier-equivalence violations (must be 0).
    pub frontier_violations: u64,
    /// Checkpoint GC: segments compacted away, all runs.
    pub gc_segments: u64,
    /// High-water mark of live WAL segments in any single run — the
    /// checkpoint-GC bound.
    pub max_live_segments: u64,
}

/// Soaks the simulator ledger across `seeds` seeds (every run asserts the
/// safety outcomes internally) and aggregates the storage counters.
pub fn soak(seeds: u64, cfg_base: DiskChaosConfig) -> SoakOutcome {
    let mut out = SoakOutcome::default();
    for seed in 0..seeds {
        let r = run_ledger(DiskChaosConfig { seed, ..cfg_base });
        out.runs += 1;
        out.correct += u64::from(r.matches_fault_free);
        out.recoveries += r.store.store.recoveries;
        out.corrupt_recoveries += r.store.store.corrupt_recoveries;
        out.faults_injected += r.store.faults_injected;
        out.frontier_violations += r.store.frontier_violations;
        out.gc_segments += r.store.store.gc_segments;
        out.max_live_segments = out.max_live_segments.max(r.store.store.max_live_segments);
    }
    out
}

/// Sweeps the storage-fault soak across drop rates and tabulates the
/// recovery and GC counters.
pub fn sweep(
    seeds_per_row: u64,
    drop_rates: &[f64],
    cfg_base: DiskChaosConfig,
) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E-disk: durable recovery under crashes with storage faults",
        &[
            "drop",
            "runs",
            "correct",
            "recoveries",
            "corrupt",
            "disk faults",
            "frontier viol",
            "gc segs",
            "max live segs",
        ],
    );
    for &drop_rate in drop_rates {
        let out = soak(
            seeds_per_row,
            DiskChaosConfig {
                drop_rate,
                ..cfg_base
            },
        );
        table.row(&[
            format!("{drop_rate:.2}"),
            format!("{}", out.runs),
            format!("{}", out.correct),
            format!("{}", out.recoveries),
            format!("{}", out.corrupt_recoveries),
            format!("{}", out.faults_injected),
            format!("{}", out.frontier_violations),
            format!("{}", out.gc_segments),
            format!("{}", out.max_live_segments),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_commits_fault_free_totals_with_a_corrupt_disk() {
        let r = run_ledger(DiskChaosConfig::default());
        assert!(r.matches_fault_free);
        assert!(r.finalized > 0);
        assert!(r.store.store.events > 0, "the WAL must see traffic");
        assert_eq!(r.store.frontier_violations, 0);
    }

    #[test]
    fn checkpoint_gc_bounds_live_segments() {
        let r = run_ledger(DiskChaosConfig {
            rounds: 24,
            crash: false,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            ..DiskChaosConfig::default()
        });
        assert!(
            r.store.store.checkpoints > 0,
            "checkpoint cadence must fire: {:?}",
            r.store
        );
        assert!(
            r.store.store.gc_segments > 0,
            "GC must compact dead segments: {:?}",
            r.store
        );
        assert!(
            r.store.store.max_live_segments < 64,
            "GC must bound live segments: {:?}",
            r.store
        );
    }

    #[test]
    fn soak_across_seeds_is_violation_free() {
        let out = soak(16, DiskChaosConfig::default());
        assert_eq!(out.runs, out.correct);
        assert_eq!(out.frontier_violations, 0);
        assert!(out.recoveries > 0, "crashes must recover from the store");
        assert!(
            out.faults_injected > 0,
            "the storage fault mix must actually fire"
        );
    }

    #[test]
    fn disk_chaos_is_deterministic_per_seed() {
        let cfg = DiskChaosConfig {
            seed: 9,
            ..DiskChaosConfig::default()
        };
        let a = run_ledger(cfg);
        let b = run_ledger(cfg);
        assert_eq!(a.quiescent, b.quiescent);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.store.store, b.store.store);
    }

    #[test]
    fn threaded_ledger_survives_a_storage_faulted_crash() {
        let r = run_threaded(DiskChaosConfig::default());
        assert!(r.matches_fault_free);
        assert!(r.finalized > 0);
        assert_eq!(r.store.frontier_violations, 0);
        assert!(r.store.store.events > 0);
    }
}

//! Checker scenario adapters: small environments built for `hope-check`'s
//! schedule exploration rather than for timing experiments.
//!
//! Every scenario here uses a **zero-latency** network, which pins the
//! virtual clock to 0 for the whole run. That matters for state-hash
//! deduplication: two schedules that deliver commuting messages in either
//! order then reach the *same* state only if no timestamps diverged along
//! the way. Scenario builders return an un-run [`HopeEnv`]; the checker
//! drives it step by step through the runtime's scheduler hook.

use hope_core::{DurableConfig, HopeEnv, SpecPolicy, SyncPolicy};
use hope_runtime::{FaultPlan, NetworkConfig, StorageFaultPlan};
use hope_types::{AidId, ProcessId, VirtualDuration, VirtualTime};

use crate::rings::{decode_aids, encode_aids};

/// Builds (without running) a mutual-affirm ring of size `n`, the paper's
/// F13 interference cycle: process *i* guesses AID *i* and affirms AID
/// *(i+1) mod n*. Under Algorithm 2 (`cycle_detection = true`) every
/// schedule must converge with all intervals finalized; under Algorithm 1
/// the ring livelocks (§5.3).
pub fn ring(n: usize, cycle_detection: bool, seed: u64) -> HopeEnv {
    assert!(n >= 2, "a ring needs at least two processes");
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::constant(VirtualDuration::ZERO))
        .cycle_detection(cycle_detection)
        .max_events(1_000_000)
        .build();
    let mut pids = Vec::new();
    for i in 0..n {
        let pid = env.spawn_user(&format!("ring-{i}"), move |ctx| {
            let m = ctx.receive(None);
            let aids = decode_aids(&m.data);
            let mine = aids[i];
            let next = aids[(i + 1) % aids.len()];
            if ctx.guess(mine) {
                ctx.affirm(next);
            }
        });
        pids.push(pid);
    }
    env.spawn_user("coordinator", move |ctx| {
        let aids: Vec<AidId> = (0..pids.len()).map(|_| ctx.aid_init()).collect();
        let payload = encode_aids(&aids);
        for &p in &pids {
            ctx.send(p, 0, payload.clone());
        }
    });
    env
}

/// A ring under Algorithm 2 plus a scheduled crash/restart of ring process
/// 0 at virtual time zero. The fault plan enables the reliable-delivery
/// sublayer, so the checker also explores orderings of retransmission
/// timers against deliveries and the crash window. Because a schedule can
/// deliver every copy of a message inside the down window (losing it for
/// good), convergence is *not* guaranteed here — safety and crash-recovery
/// equivalence are.
pub fn chaos_ring(n: usize, seed: u64) -> HopeEnv {
    assert!(n >= 2, "a ring needs at least two processes");
    let victim = ProcessId::from_raw(0); // ring-0: first spawn below
    let plan = FaultPlan::new()
        .seed(seed)
        .crash(victim, VirtualTime::ZERO, VirtualDuration::ZERO)
        .rto(VirtualDuration::from_millis(5))
        .max_retransmits(6);
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::constant(VirtualDuration::ZERO))
        .cycle_detection(true)
        .max_events(1_000_000)
        .faults(plan)
        .build();
    let mut pids = Vec::new();
    for i in 0..n {
        let pid = env.spawn_user(&format!("ring-{i}"), move |ctx| {
            let m = ctx.receive(None);
            let aids = decode_aids(&m.data);
            let mine = aids[i];
            let next = aids[(i + 1) % aids.len()];
            if ctx.guess(mine) {
                ctx.affirm(next);
            }
        });
        pids.push(pid);
    }
    assert_eq!(pids[0], victim, "crash plan must target ring-0");
    env.spawn_user("coordinator", move |ctx| {
        let aids: Vec<AidId> = (0..pids.len()).map(|_| ctx.aid_init()).collect();
        let payload = encode_aids(&aids);
        for &p in &pids {
            ctx.send(p, 0, payload.clone());
        }
    });
    env
}

/// A mutual-affirm ring plus a **persistently denied** "storm" AID, under
/// a configurable speculation policy (DESIGN.md §9). Every ring process
/// first affirms its successor's AID — unconditionally, so ring progress
/// is never gated behind this process's own guesses (under
/// [`SpecPolicy::Pessimistic`], which waits at the guess, a guarded affirm
/// would deadlock the ring) — then guesses the storm AID the coordinator
/// is about to deny, then its own. Lossless and crash-free, so every
/// schedule must converge with all intervals definite and within the
/// wait-freedom step bound, whichever policy is active: unthrottled
/// optimism eats the rollback, throttled processes must be woken by the
/// `Replace`/`Rollback` that resolves their parked guess.
pub fn deny_storm(n: usize, policy: SpecPolicy, seed: u64) -> HopeEnv {
    assert!(n >= 2, "a storm ring needs at least two processes");
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::constant(VirtualDuration::ZERO))
        .cycle_detection(true)
        .max_events(1_000_000)
        .spec_policy(policy)
        .build();
    let mut pids = Vec::new();
    for i in 0..n {
        let pid = env.spawn_user(&format!("storm-{i}"), move |ctx| {
            let m = ctx.receive(None);
            let aids = decode_aids(&m.data);
            let ring = aids.len() - 1; // last AID is the storm
            let mine = aids[i];
            let next = aids[(i + 1) % ring];
            let storm = aids[ring];
            ctx.affirm(next);
            let _doomed = ctx.guess(storm);
            let _ = ctx.guess(mine);
        });
        pids.push(pid);
    }
    env.spawn_user("coordinator", move |ctx| {
        let mut aids: Vec<AidId> = (0..=pids.len()).map(|_| ctx.aid_init()).collect();
        let payload = encode_aids(&aids);
        for &p in &pids {
            ctx.send(p, 0, payload.clone());
        }
        let storm = aids.pop().expect("storm AID");
        ctx.deny(storm);
    });
    env
}

/// The chaos ring with **durable op-logs and storage faults**: every
/// process journals to a segmented WAL, and ring-0's crash image takes a
/// seeded storage fault (torn final record, lost fsync window, or bit
/// flip) before recovery replays the longest valid prefix. A zero-length
/// `compute` after each guess leaves deliberately-unsynced bytes in the
/// WAL tail under [`SyncPolicy::Visible`], so the checker explores
/// schedules where the corruption actually lands on live data. Safety and
/// crash-recovery equivalence must hold on every schedule; convergence is
/// not promised (a schedule can still lose every copy of a message).
pub fn disk_ring(n: usize, seed: u64) -> HopeEnv {
    assert!(n >= 2, "a ring needs at least two processes");
    let victim = ProcessId::from_raw(0); // ring-0: first spawn below
    let plan = FaultPlan::new()
        .seed(seed)
        .crash(victim, VirtualTime::ZERO, VirtualDuration::ZERO)
        .rto(VirtualDuration::from_millis(5))
        .max_retransmits(6)
        .storage(
            StorageFaultPlan::default()
                .torn_final_record(0.4)
                .lost_sync_window(0.3)
                .bit_flip(0.2),
        );
    let mut env = HopeEnv::builder()
        .seed(seed)
        .network(NetworkConfig::constant(VirtualDuration::ZERO))
        .cycle_detection(true)
        .max_events(1_000_000)
        .faults(plan)
        .durable(DurableConfig {
            segment_bytes: 128,
            checkpoint_every: 4,
            sync_policy: SyncPolicy::Visible,
        })
        .build();
    let mut pids = Vec::new();
    for i in 0..n {
        let pid = env.spawn_user(&format!("ring-{i}"), move |ctx| {
            let m = ctx.receive(None);
            let aids = decode_aids(&m.data);
            let mine = aids[i];
            let next = aids[(i + 1) % aids.len()];
            if ctx.guess(mine) {
                ctx.affirm(next);
            }
            // Zero-duration local work: logs a non-visible op without
            // advancing the virtual clock, so the WAL keeps an unsynced
            // tail for the storage fault to corrupt.
            ctx.compute(VirtualDuration::ZERO);
        });
        pids.push(pid);
    }
    assert_eq!(pids[0], victim, "crash plan must target ring-0");
    env.spawn_user("coordinator", move |ctx| {
        let aids: Vec<AidId> = (0..pids.len()).map(|_| ctx.aid_init()).collect();
        let payload = encode_aids(&aids);
        for &p in &pids {
            ctx.send(p, 0, payload.clone());
        }
    });
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_runs_to_convergence_in_default_order() {
        let mut env = ring(2, true, 1);
        let report = env.run();
        assert!(report.is_clean());
        assert!(report.run.blocked.is_empty());
        assert_eq!(report.run.now, VirtualTime::ZERO, "zero-latency clock");
        for pid in env.user_pids() {
            let history = env.history_of(pid).expect("tracked");
            assert!(history.iter().all(|r| r.definite));
        }
    }

    #[test]
    fn deny_storm_converges_in_default_order_under_every_policy() {
        let policies = [
            SpecPolicy::AlwaysOptimistic,
            SpecPolicy::adaptive(0.1, 4, 0.05).unwrap(),
            SpecPolicy::Pessimistic,
        ];
        for policy in policies {
            let mut env = deny_storm(2, policy, 1);
            let report = env.run();
            assert!(report.is_clean(), "{policy:?}: {:?}", report.run.panics);
            assert!(report.run.blocked.is_empty(), "{policy:?}");
            for pid in env.user_pids() {
                let history = env.history_of(pid).expect("tracked");
                assert!(history.iter().all(|r| r.definite), "{policy:?}");
            }
        }
    }

    #[test]
    fn chaos_ring_recovers_in_default_order() {
        let mut env = chaos_ring(2, 1);
        let report = env.run();
        assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
    }

    #[test]
    fn disk_ring_recovers_from_faulted_storage_in_default_order() {
        for seed in 0..8 {
            let mut env = disk_ring(2, seed);
            let report = env.run();
            assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
            let store = env.store_stats().expect("disk_ring configures storage");
            assert_eq!(store.frontier_violations, 0, "seed {seed}: {store:?}");
        }
    }
}

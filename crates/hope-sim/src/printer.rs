//! The paper's §3.1 printer workload (Figures 1 and 2).
//!
//! A worker prints a report total to a remote print server, must start a
//! new page if the total overflowed the current page, and then prints a
//! summary:
//!
//! ```text
//! S1:  line = call print("Total is", total)
//! S2:  if line >= PageSize { call newpage() }
//! S3:  call print("Summary ...")
//! ```
//!
//! [`run_sequential`] executes the three statements as synchronous RPCs
//! (Figure 1: the worker idles through every round trip).
//! [`run_streaming`] applies the paper's call-streaming transformation
//! (Figure 2): a *WorryWart* process executes S1 and verifies the
//! optimistic assumption `PartPage` ("the report does not end exactly at
//! the bottom of the page") while the worker runs S2/S3 immediately; the
//! `Order` assumption guards against S3 overtaking S1 at the print server
//! (the §3.1 causality violation), detected by the WorryWart's
//! `free_of(Order)`.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::{HopeEnv, ProcessCtx};
use hope_rpc::{RpcClient, RpcServer};
use hope_runtime::NetworkConfig;
use hope_types::{VirtualDuration, VirtualTime};

/// Print-server method: append a line, reply with the new line number.
pub const METHOD_PRINT: u32 = 1;
/// Print-server method: start a new page (line counter back to zero).
pub const METHOD_NEWPAGE: u32 = 2;

/// Parameters of one printer run.
#[derive(Debug, Clone, Copy)]
pub struct PrinterConfig {
    /// One-way network latency.
    pub latency: VirtualDuration,
    /// Print-server service time per request.
    pub service: VirtualDuration,
    /// Lines per page.
    pub page_size: u32,
    /// If true, the total lands exactly at the page boundary — the
    /// optimistic assumption is wrong and the streaming variant must roll
    /// back and call `newpage`.
    pub hit_boundary: bool,
    /// Local CPU time the worker spends between spawning the WorryWart and
    /// issuing S3 (the S2 bookkeeping of Figure 2). With a realistic
    /// non-zero value the WorryWart's S1 reaches the server first; set it
    /// to zero to deliberately trigger the §3.1 ordering violation that
    /// `free_of(Order)` exists to catch.
    pub local_work: VirtualDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for PrinterConfig {
    fn default() -> Self {
        PrinterConfig {
            latency: VirtualDuration::from_millis(10),
            service: VirtualDuration::from_micros(50),
            page_size: 60,
            hit_boundary: false,
            local_work: VirtualDuration::from_micros(10),
            seed: 0,
        }
    }
}

/// Measured outcome of one printer run.
#[derive(Debug, Clone, Copy)]
pub struct PrinterResult {
    /// Virtual time at which the worker finished its last statement
    /// (after any rollbacks — the committed completion).
    pub worker_time: VirtualDuration,
    /// Virtual time at full quiescence (verification tail included).
    pub quiescent: VirtualTime,
    /// Intervals rolled back during the run.
    pub rollbacks: u64,
    /// HOPE protocol messages exchanged.
    pub hope_messages: u64,
    /// Application messages exchanged.
    pub user_messages: u64,
    /// Final line counter at the print server (correctness witness).
    pub final_line: u32,
}

fn encode_u32(v: u32) -> Bytes {
    Bytes::from(v.to_le_bytes().to_vec())
}

fn decode_u32(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[..4].try_into().expect("u32 reply"))
}

fn spawn_print_server(
    env: &mut HopeEnv,
    cfg: PrinterConfig,
    final_line: Arc<Mutex<u32>>,
) -> hope_types::ProcessId {
    let init_line = if cfg.hit_boundary {
        cfg.page_size - 1
    } else {
        0
    };
    let service = cfg.service;
    env.spawn_user("print-server", move |ctx| {
        let mut line = init_line;
        let fl = final_line.clone();
        RpcServer::serve(ctx, move |ctx, method, _body| {
            ctx.compute(service);
            match method {
                METHOD_PRINT => line += 1,
                METHOD_NEWPAGE => line = 0,
                _ => {}
            }
            if !ctx.is_replaying() {
                *fl.lock().unwrap() = line;
            }
            encode_u32(line)
        });
    })
}

/// Figure 1: the untransformed worker — three synchronous calls.
pub fn run_sequential(cfg: PrinterConfig) -> PrinterResult {
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    let final_line = Arc::new(Mutex::new(0));
    let server = spawn_print_server(&mut env, cfg, final_line.clone());
    let worker_done = Arc::new(Mutex::new(VirtualTime::ZERO));
    let done = worker_done.clone();
    let page_size = cfg.page_size;
    env.spawn_user("worker", move |ctx| {
        // S1
        let reply = RpcClient::call(ctx, server, METHOD_PRINT, Bytes::new());
        let line = decode_u32(&reply);
        // S2
        if line >= page_size {
            let _ = RpcClient::call(ctx, server, METHOD_NEWPAGE, Bytes::new());
        }
        // S3
        let _ = RpcClient::call(ctx, server, METHOD_PRINT, Bytes::new());
        if !ctx.is_replaying() {
            *done.lock().unwrap() = ctx.now();
        }
    });
    let report = env.run();
    assert!(
        report.is_clean(),
        "printer run failed: {:?}",
        report.run.panics
    );
    let worker_time = worker_done
        .lock()
        .unwrap()
        .saturating_duration_since(VirtualTime::ZERO);
    let final_line = *final_line.lock().unwrap();
    PrinterResult {
        worker_time,
        quiescent: report.run.now,
        rollbacks: report.hope.rollbacks,
        hope_messages: report.run.stats.total_hope(),
        user_messages: report.run.stats.count_kind("User"),
        final_line,
    }
}

/// Figure 2: the call-streaming worker with its WorryWart verifier.
pub fn run_streaming(cfg: PrinterConfig) -> PrinterResult {
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    let final_line = Arc::new(Mutex::new(0));
    let server = spawn_print_server(&mut env, cfg, final_line.clone());
    let worker_done = Arc::new(Mutex::new(VirtualTime::ZERO));
    let done = worker_done.clone();
    let page_size = cfg.page_size;
    let local_work = cfg.local_work;
    env.spawn_user("worker", move |ctx| {
        streaming_worker(ctx, server, page_size, local_work);
        if !ctx.is_replaying() {
            *done.lock().unwrap() = ctx.now();
        }
    });
    let report = env.run();
    assert!(
        report.is_clean(),
        "printer run failed: {:?}",
        report.run.panics
    );
    let worker_time = worker_done
        .lock()
        .unwrap()
        .saturating_duration_since(VirtualTime::ZERO);
    let final_line = *final_line.lock().unwrap();
    PrinterResult {
        worker_time,
        quiescent: report.run.now,
        rollbacks: report.hope.rollbacks,
        hope_messages: report.run.stats.total_hope(),
        user_messages: report.run.stats.count_kind("User"),
        final_line,
    }
}

/// The Figure 2 worker body, reusable from examples. `local_work` models
/// the worker's own CPU time for the S2 bookkeeping (with zero local work
/// the simulator's zero-cost primitives would let S3 overtake S1 on every
/// run; real CPUs spend time there, which is what keeps the common case
/// violation-free in the paper's measurements).
pub fn streaming_worker(
    ctx: &mut ProcessCtx<'_>,
    server: hope_types::ProcessId,
    page_size: u32,
    local_work: VirtualDuration,
) {
    // PartPage: "the report does not end exactly at the bottom of the
    // page". Order: "S3 does not overtake S1 at the print server".
    let order = ctx.aid_init();
    // S1 runs in the WorryWart: only the boundary outcome matters to the
    // worker, so no value is redeemed — the WorryWart's affirm/deny of
    // PartPage carries the decision.
    let part_page = streaming_print_s1(ctx, server, page_size, order);
    ctx.compute(local_work);
    // S2: optimistically assume no page break.
    if ctx.guess(part_page) {
        // nothing to do — the assumption says the page has room
    } else {
        let _ = RpcClient::call(ctx, server, METHOD_NEWPAGE, Bytes::new());
    }
    // S3 must stay ordered after S1: depend on Order while sending it.
    let _ = ctx.guess(order);
    let _ = RpcClient::call(ctx, server, METHOD_PRINT, Bytes::new());
}

/// Spawns the WorryWart for S1 and returns the `PartPage` assumption.
fn streaming_print_s1(
    ctx: &mut ProcessCtx<'_>,
    server: hope_types::ProcessId,
    page_size: u32,
    order: hope_types::AidId,
) -> hope_types::AidId {
    let part_page = ctx.aid_init();
    ctx.spawn_user("worrywart", move |wctx| {
        // S1: the real print call.
        let reply = RpcClient::call(wctx, server, METHOD_PRINT, Bytes::new());
        let line = decode_u32(&reply);
        // §3.1: if S3 overtook S1, our reply was tainted by the worker's
        // Order-tagged message; deny Order to force corrective rollbacks.
        let _ = wctx.free_of(order);
        if line < page_size {
            wctx.affirm(part_page);
        } else {
            wctx.deny(part_page);
        }
    });
    part_page
}

/// Sweeps latency × boundary-hit probability, averaging worker completion
/// time over `iterations` seeded Bernoulli draws per cell.
pub fn sweep(
    latencies: &[VirtualDuration],
    hit_probs: &[f64],
    iterations: u32,
    seed: u64,
) -> crate::table::Table {
    use rand::{Rng, SeedableRng};
    let mut table = crate::table::Table::new(
        "Figures 1-2: sequential RPC vs. HOPE call streaming (printer workload)",
        &[
            "latency",
            "p(break)",
            "seq worker",
            "stream worker",
            "speedup",
            "rollbacks/iter",
        ],
    );
    for &latency in latencies {
        for &p in hit_probs {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ latency.as_nanos());
            let mut seq = Vec::new();
            let mut stream = Vec::new();
            let mut rolls = 0u64;
            for i in 0..iterations {
                let hit = (rng.next_u64() as f64 / u64::MAX as f64) < p;
                let cfg = PrinterConfig {
                    latency,
                    hit_boundary: hit,
                    seed: seed + i as u64,
                    ..PrinterConfig::default()
                };
                let s = run_sequential(cfg);
                let t = run_streaming(cfg);
                assert_eq!(
                    s.final_line, t.final_line,
                    "both variants must leave the server in the same state"
                );
                seq.push(s.worker_time.as_millis_f64());
                stream.push(t.worker_time.as_millis_f64());
                rolls += t.rollbacks;
            }
            let seq_mean = crate::table::mean(&seq);
            let stream_mean = crate::table::mean(&stream);
            table.row(&[
                format!("{latency}"),
                format!("{p:.2}"),
                format!("{seq_mean:.3}ms"),
                format!("{stream_mean:.3}ms"),
                format!("{:.2}x", seq_mean / stream_mean.max(1e-9)),
                format!("{:.2}", rolls as f64 / iterations as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_costs_three_or_two_round_trips() {
        let cfg = PrinterConfig::default();
        let r = run_sequential(cfg);
        // Two calls (S1, S3) at 2×10ms each plus service time.
        assert!(r.worker_time >= VirtualDuration::from_millis(40));
        assert!(r.worker_time < VirtualDuration::from_millis(45));
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.final_line, 2);
    }

    #[test]
    fn sequential_boundary_adds_newpage_round_trip() {
        let cfg = PrinterConfig {
            hit_boundary: true,
            ..PrinterConfig::default()
        };
        let r = run_sequential(cfg);
        assert!(r.worker_time >= VirtualDuration::from_millis(60));
        assert_eq!(r.final_line, 1, "newpage reset then summary printed");
    }

    #[test]
    fn streaming_beats_sequential_off_boundary() {
        let cfg = PrinterConfig::default();
        let seq = run_sequential(cfg);
        let stream = run_streaming(cfg);
        assert_eq!(stream.final_line, seq.final_line, "same server end state");
        assert!(
            stream.worker_time.as_nanos() * 3 <= seq.worker_time.as_nanos() * 2,
            "streaming must save at least a third: {} vs {}",
            stream.worker_time,
            seq.worker_time
        );
    }

    #[test]
    fn streaming_on_boundary_rolls_back_but_stays_correct() {
        let cfg = PrinterConfig {
            hit_boundary: true,
            ..PrinterConfig::default()
        };
        let seq = run_sequential(cfg);
        let stream = run_streaming(cfg);
        assert!(stream.rollbacks >= 1, "the wrong guess must roll back");
        assert_eq!(
            stream.final_line, seq.final_line,
            "rollback must restore correctness"
        );
    }

    #[test]
    fn zero_local_work_triggers_the_order_violation() {
        // With no local work, S3 overtakes S1 at the server: the WorryWart's
        // free_of(Order) must detect the §3.1 causality violation, deny
        // Order, and force corrective rollbacks — and the final state must
        // still be right.
        let cfg = PrinterConfig {
            local_work: VirtualDuration::ZERO,
            ..PrinterConfig::default()
        };
        let seq = run_sequential(cfg);
        let stream = run_streaming(cfg);
        assert!(
            stream.rollbacks >= 1,
            "the ordering violation must force rollbacks"
        );
        assert_eq!(stream.final_line, seq.final_line);
    }

    #[test]
    fn sweep_produces_full_grid() {
        let t = sweep(&[VirtualDuration::from_millis(1)], &[0.0, 1.0], 2, 7);
        assert_eq!(t.rows.len(), 2);
        let text = t.to_string();
        assert!(text.contains("speedup"));
    }
}

//! E3 — dependent RPC chains: the "up to 70 % RPC improvement" claim.
//!
//! A client makes `depth` *dependent* calls to a remote stage server: each
//! request carries the previous reply. Synchronously that costs
//! `depth × (2·latency + service)`. With call streaming and a predictor of
//! accuracy `a`, correctly predicted calls overlap their round trips
//! completely; a misprediction rolls the client back to the redeem point
//! and pays the round trip after all.
//!
//! The *improvement* `1 − streamed/sequential` rises with depth toward the
//! paper's ~70 % figure (measured in its companion paper \[11\]) and falls
//! as the predictor degrades.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope_core::{HopeEnv, HopeReport};
use hope_rpc::{RpcClient, RpcServer, StreamingClient};
use hope_runtime::NetworkConfig;
use hope_types::{VirtualDuration, VirtualTime};

/// The stage function every server applies: a cheap, deterministic mix so
/// each call's argument genuinely depends on the previous reply.
pub fn stage_fn(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Parameters of one chain run.
#[derive(Debug, Clone, Copy)]
pub struct ChainConfig {
    /// Number of dependent calls.
    pub depth: u32,
    /// One-way network latency.
    pub latency: VirtualDuration,
    /// Server service time per call.
    pub service: VirtualDuration,
    /// Client CPU time between issuing calls (keeps send order realistic
    /// and models the work the paper overlaps with communication).
    pub local_work: VirtualDuration,
    /// Predictor accuracy in [0, 1]: each prediction is independently
    /// correct with this probability (seeded, deterministic).
    pub accuracy: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            depth: 4,
            latency: VirtualDuration::from_millis(10),
            service: VirtualDuration::from_micros(100),
            local_work: VirtualDuration::from_micros(20),
            accuracy: 1.0,
            seed: 0,
        }
    }
}

/// Measured outcome of one chain run.
#[derive(Debug, Clone, Copy)]
pub struct ChainResult {
    /// Client completion (virtual) — the committed value of the final
    /// reply is in hand.
    pub client_time: VirtualDuration,
    /// Virtual time at quiescence (all verification finished).
    pub quiescent: VirtualTime,
    /// Final chained value (correctness witness).
    pub value: u64,
    /// Intervals rolled back.
    pub rollbacks: u64,
}

fn encode_u64(v: u64) -> Bytes {
    Bytes::from(v.to_le_bytes().to_vec())
}

fn decode_u64(data: &[u8]) -> u64 {
    u64::from_le_bytes(data[..8].try_into().expect("u64 payload"))
}

fn spawn_stage_server(env: &mut HopeEnv, service: VirtualDuration) -> hope_types::ProcessId {
    env.spawn_user("stage", move |ctx| {
        RpcServer::serve(ctx, move |ctx, _method, body| {
            ctx.compute(service);
            encode_u64(stage_fn(decode_u64(body)))
        });
    })
}

/// The reference value the chain must produce.
pub fn expected_value(depth: u32) -> u64 {
    let mut v = 1u64;
    for _ in 0..depth {
        v = stage_fn(v);
    }
    v
}

/// Runs the chain with plain synchronous RPC (the baseline).
pub fn run_sequential(cfg: ChainConfig) -> ChainResult {
    let mut env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    let server = spawn_stage_server(&mut env, cfg.service);
    let out = Arc::new(Mutex::new((VirtualTime::ZERO, 0u64)));
    let o = out.clone();
    let depth = cfg.depth;
    let local_work = cfg.local_work;
    env.spawn_user("client", move |ctx| {
        let mut value = 1u64;
        for _ in 0..depth {
            ctx.compute(local_work);
            let reply = RpcClient::call(ctx, server, 0, encode_u64(value));
            value = decode_u64(&reply);
        }
        if !ctx.is_replaying() {
            *o.lock().unwrap() = (ctx.now(), value);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (t, value) = *out.lock().unwrap();
    ChainResult {
        client_time: t.saturating_duration_since(VirtualTime::ZERO),
        quiescent: report.run.now,
        value,
        rollbacks: report.hope.rollbacks,
    }
}

/// Runs the chain with optimistic call streaming and an `accuracy`-grade
/// predictor.
pub fn run_streaming(cfg: ChainConfig) -> ChainResult {
    let env = HopeEnv::builder()
        .seed(cfg.seed)
        .network(NetworkConfig::constant(cfg.latency))
        .build();
    run_streaming_in(env, cfg).0
}

/// Runs the streaming chain in a caller-built environment, also handing
/// back the full [`HopeReport`] (the chaos workload uses this to add
/// fault injection and read the link-layer counters). Spawn order is
/// part of the contract: the stage server first, then the client.
pub fn run_streaming_in(mut env: HopeEnv, cfg: ChainConfig) -> (ChainResult, HopeReport) {
    let server = spawn_stage_server(&mut env, cfg.service);
    let out = Arc::new(Mutex::new((VirtualTime::ZERO, 0u64)));
    let o = out.clone();
    let depth = cfg.depth;
    let local_work = cfg.local_work;
    let accuracy = cfg.accuracy;
    env.spawn_user("client", move |ctx| {
        let mut value = 1u64;
        for _ in 0..depth {
            ctx.compute(local_work);
            // An oracle predictor degraded to the requested accuracy: the
            // coin comes from the context so it replays deterministically.
            let correct = stage_fn(value);
            let coin = (ctx.random() as f64) / (u64::MAX as f64);
            let predicted = if coin < accuracy { correct } else { !correct };
            let promise =
                StreamingClient::call(ctx, server, 0, encode_u64(value), encode_u64(predicted));
            let (reply, _was_predicted) = promise.redeem(ctx);
            value = decode_u64(&reply);
        }
        if !ctx.is_replaying() {
            *o.lock().unwrap() = (ctx.now(), value);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    let (t, value) = *out.lock().unwrap();
    let result = ChainResult {
        client_time: t.saturating_duration_since(VirtualTime::ZERO),
        quiescent: report.run.now,
        value,
        rollbacks: report.hope.rollbacks,
    };
    (result, report)
}

/// Sweeps chain depth × predictor accuracy, reporting the RPC improvement
/// (1 − streamed/sequential), the experiment behind the paper's "up to
/// 70 %" claim.
pub fn sweep(depths: &[u32], accuracies: &[f64], seed: u64) -> crate::table::Table {
    let mut table = crate::table::Table::new(
        "E3: RPC improvement from call streaming (dependent chains)",
        &[
            "depth",
            "accuracy",
            "sequential",
            "streamed",
            "improvement",
            "rollbacks",
        ],
    );
    for &depth in depths {
        for &accuracy in accuracies {
            let cfg = ChainConfig {
                depth,
                accuracy,
                seed,
                ..ChainConfig::default()
            };
            let seq = run_sequential(cfg);
            let stream = run_streaming(cfg);
            assert_eq!(seq.value, expected_value(depth));
            assert_eq!(
                stream.value, seq.value,
                "streaming must converge to the same value"
            );
            let s = seq.quiescent.as_secs_f64() * 1e3;
            let t = stream.quiescent.as_secs_f64() * 1e3;
            table.row(&[
                format!("{depth}"),
                format!("{accuracy:.2}"),
                format!("{s:.3}ms"),
                format!("{t:.3}ms"),
                format!("{:.1}%", (1.0 - t / s.max(1e-12)) * 100.0),
                format!("{}", stream.rollbacks),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pays_depth_round_trips() {
        let cfg = ChainConfig::default();
        let r = run_sequential(cfg);
        assert_eq!(r.value, expected_value(cfg.depth));
        // 4 × (20 ms + 100 µs + 20 µs local) ≈ 80.5 ms
        assert!(r.client_time >= VirtualDuration::from_millis(80));
        assert_eq!(r.rollbacks, 0);
    }

    #[test]
    fn perfect_predictions_hide_nearly_all_latency() {
        let cfg = ChainConfig::default();
        let seq = run_sequential(cfg);
        let stream = run_streaming(cfg);
        assert_eq!(stream.value, seq.value);
        let improvement =
            1.0 - stream.client_time.as_millis_f64() / seq.client_time.as_millis_f64();
        assert!(
            improvement > 0.7,
            "depth-4 perfect streaming should beat the paper's 70%: got {:.1}%",
            improvement * 100.0
        );
        assert_eq!(stream.rollbacks, 0);
    }

    #[test]
    fn zero_accuracy_still_converges_to_the_right_value() {
        let cfg = ChainConfig {
            accuracy: 0.0,
            depth: 3,
            ..ChainConfig::default()
        };
        let stream = run_streaming(cfg);
        assert_eq!(stream.value, expected_value(3));
        assert!(stream.rollbacks >= 3, "every prediction must roll back");
    }

    #[test]
    fn zero_accuracy_is_not_faster_than_sequential() {
        let cfg = ChainConfig {
            accuracy: 0.0,
            depth: 3,
            ..ChainConfig::default()
        };
        let seq = run_sequential(cfg);
        let stream = run_streaming(cfg);
        assert!(
            stream.client_time.as_nanos() >= seq.client_time.as_nanos() * 9 / 10,
            "mispredicted streaming cannot beat sequential: {} vs {}",
            stream.client_time,
            seq.client_time
        );
    }

    #[test]
    fn end_to_end_improvement_grows_with_depth() {
        // The client-visible improvement saturates immediately (perfect
        // predictions hide everything); the *end-to-end* improvement —
        // including the verification tail at quiescence — grows with
        // depth toward 100% as the fixed verification tail amortizes.
        let imp = |depth| {
            let cfg = ChainConfig {
                depth,
                ..ChainConfig::default()
            };
            let seq = run_sequential(cfg);
            let stream = run_streaming(cfg);
            1.0 - stream.quiescent.as_secs_f64() / seq.quiescent.as_secs_f64()
        };
        let i2 = imp(2);
        let i4 = imp(4);
        let i8 = imp(8);
        assert!(i4 > i2, "deeper chains hide more latency: {i2} vs {i4}");
        assert!(i8 > i4, "{i4} vs {i8}");
        // The end-to-end improvement follows ≈ 1 − 2/depth: ~50% at 4,
        // crossing the paper's 70% around depth 7.
        assert!(i4 > 0.45, "depth 4 should approach 50%: {i4}");
        assert!(i8 > 0.7, "depth 8 should clear the paper's 70%: {i8}");
    }

    #[test]
    fn sweep_has_expected_rows() {
        let t = sweep(&[2, 4], &[1.0], 3);
        assert_eq!(t.rows.len(), 2);
    }
}

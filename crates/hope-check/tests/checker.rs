//! End-to-end tests of the schedule explorer against the real runtime:
//! the 2-ring converges under every delivery order (Theorem 5.3 /
//! Algorithm 2), Algorithm 1 livelocks, the reductions are sound, and the
//! counterexample pipeline (walk → shrink → replay) closes the loop.

use hope_check::explore::{replay, ReplayEnd};
use hope_check::{
    dfs, random_walk, shrink, ConvergenceOracle, CrashRecoveryOracle, DemoOrderOracle, DfsConfig,
    Oracle, SafetyOracle, WaitFreedomOracle, WalkConfig,
};
use hope_sim::scenarios;

fn full_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(SafetyOracle),
        Box::new(ConvergenceOracle),
        Box::new(WaitFreedomOracle { max_steps: 2_000 }),
    ]
}

#[test]
fn exhaustive_2ring_converges_under_algorithm_2() {
    let build = || scenarios::ring(2, true, 1);
    let mut oracles = full_oracles();
    let report = dfs(&build, &mut oracles, &DfsConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.found_cycle, "Algorithm 2 must always make progress");
    assert!(!report.truncated, "the 2-ring space must fit the budget");
    assert!(report.terminals > 0, "must reach terminal states");
    assert!(
        report.branch_states > report.terminals,
        "nontrivial interleaving space: {} branch states",
        report.branch_states
    );
}

#[test]
fn exhaustive_2ring_finds_the_algorithm_1_livelock() {
    let build = || scenarios::ring(2, false, 1);
    // Safety still holds under Algorithm 1; only progress is lost.
    let mut oracles: Vec<Box<dyn Oracle>> = vec![Box::new(SafetyOracle)];
    let report = dfs(
        &build,
        &mut oracles,
        &DfsConfig {
            max_states: 50_000,
            ..DfsConfig::default()
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.found_cycle,
        "the §5.3 livelock must exist as a real runtime execution"
    );
    let witness = report.cycle_witness.expect("cycle implies witness");
    // The witness replays into a livelock, not a terminal state.
    let mut oracles: Vec<Box<dyn Oracle>> = vec![Box::new(SafetyOracle)];
    let out = replay(&build, &witness, &mut oracles, 2_000, false);
    assert!(
        matches!(out.end, ReplayEnd::Cycle | ReplayEnd::Branch { .. }),
        "witness must not quiesce: {:?}",
        out.end
    );
}

#[test]
fn sleep_set_reduction_preserves_terminal_states() {
    // Soundness of the partial-order reduction: with and without sleep
    // sets, the same set of distinct terminal states is reached (sleep
    // sets only prune redundant interleavings, never outcomes).
    let build = || scenarios::ring(2, true, 1);
    let mut oracles = full_oracles();
    let with = dfs(
        &build,
        &mut oracles,
        &DfsConfig {
            sleep_sets: true,
            ..DfsConfig::default()
        },
    );
    let without = dfs(
        &build,
        &mut oracles,
        &DfsConfig {
            sleep_sets: false,
            ..DfsConfig::default()
        },
    );
    assert!(with.violation.is_none() && without.violation.is_none());
    assert_eq!(
        with.terminals, without.terminals,
        "reduction changed the reachable terminal states"
    );
    assert!(
        with.replays <= without.replays,
        "the reduction must not explore more: {} vs {}",
        with.replays,
        without.replays
    );
}

#[test]
fn replay_is_deterministic() {
    let build = || scenarios::ring(2, true, 1);
    let mut oracles = full_oracles();
    let a = replay(&build, &[1, 0, 1], &mut oracles, 2_000, true);
    let b = replay(&build, &[1, 0, 1], &mut oracles, 2_000, true);
    assert_eq!(a.fingerprint, b.fingerprint, "same decisions, same state");
    assert_eq!(a.steps, b.steps);
    let c = replay(&build, &[], &mut oracles, 2_000, true);
    assert!(matches!(c.end, ReplayEnd::Terminal), "{:?}", c.end);
}

#[test]
fn random_walks_on_the_3_ring_stay_clean() {
    let build = || scenarios::ring(3, true, 1);
    let mut oracles = full_oracles();
    let report = random_walk(
        &build,
        &mut oracles,
        &WalkConfig {
            schedules: 40,
            max_schedule_steps: 2_000,
            seed: 0xC0FFEE,
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.terminal_runs, 40, "every schedule must quiesce");
    assert!(
        report.distinct_terminals > 1,
        "walks must reach different terminal states"
    );
}

#[test]
fn chaos_walks_preserve_safety_and_crash_recovery() {
    let build = || scenarios::chaos_ring(2, 1);
    let mut oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(SafetyOracle),
        Box::new(CrashRecoveryOracle::default()),
    ];
    let report = random_walk(
        &build,
        &mut oracles,
        &WalkConfig {
            schedules: 40,
            max_schedule_steps: 10_000,
            seed: 7,
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.terminal_runs > 0);
}

#[test]
fn injected_violation_shrinks_to_a_minimal_replayable_counterexample() {
    // The deliberately broken oracle asserts an ordering HOPE never
    // promises, so some schedules violate it; the pipeline must find one,
    // shrink it, and the shrunk decision list must still reproduce it.
    let build = || scenarios::ring(2, true, 42);
    let mut oracles: Vec<Box<dyn Oracle>> = vec![Box::new(DemoOrderOracle)];
    let walk = random_walk(
        &build,
        &mut oracles,
        &WalkConfig {
            schedules: 200,
            max_schedule_steps: 2_000,
            seed: 42,
        },
    );
    let cx = walk.violation.expect("the demo oracle must fire");
    let report = shrink(&build, &mut oracles, &cx.decisions, 2_000, 2_000)
        .expect("the original counterexample must replay");
    assert!(report.minimal.len() <= cx.decisions.len());
    assert!(
        !report.minimal.is_empty(),
        "the default order must satisfy the demo oracle, so steering is needed"
    );
    // 1-minimality under this shrinker's moves: dropping any single
    // decision or zeroing any single nonzero decision no longer violates.
    for i in 0..report.minimal.len() {
        let mut smaller = report.minimal.clone();
        smaller.remove(i);
        let out = replay(&build, &smaller, &mut oracles, 2_000, true);
        assert!(
            !matches!(out.end, ReplayEnd::Violated(_)),
            "dropping decision {i} still violates: not minimal"
        );
    }
    // And the minimal list itself replays to the violation.
    let out = replay(&build, &report.minimal, &mut oracles, 2_000, true);
    assert!(matches!(out.end, ReplayEnd::Violated(_)));
}

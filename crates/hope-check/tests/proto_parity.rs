//! Satellite check: the protocol-level engine (real `LibState` Control,
//! real `AidMachine`, exact-state dedup) must agree with the model-based
//! checker in `hope-core/tests/exhaustive_interleavings.rs` on the size of
//! the reachable state space for the mutual-affirm rings.
//!
//! The counts below are pinned in BOTH files; if either implementation
//! drifts (a protocol change, or a modelling bug), one of the two tests
//! breaks and the constants must be re-derived together.

use hope_check::proto::{explore, ring_initial};
use hope_core::{AidState, HopeConfig};

/// Pinned in `hope-core/tests/exhaustive_interleavings.rs` as well.
const RING2_STATES: usize = 145;
const RING2_TERMINALS: usize = 7;
const RING3_STATES: usize = 19_572;
const RING3_TERMINALS: usize = 163;

fn alg2() -> HopeConfig {
    HopeConfig::new()
}

fn alg1() -> HopeConfig {
    let mut c = HopeConfig::new();
    c.cycle_detection = false;
    c
}

#[test]
fn two_ring_counts_match_the_model_checker() {
    let report = explore(ring_initial(2), alg2(), 200_000, |terminal| {
        assert!(terminal.fully_definite(), "{terminal:#?}");
        assert!(terminal.aids.iter().all(|m| m.state() == AidState::True));
    });
    assert!(!report.found_cycle);
    assert_eq!(
        (report.visited, report.terminals),
        (RING2_STATES, RING2_TERMINALS),
        "2-ring reachable-state counts diverged from the model checker"
    );
}

#[test]
fn three_ring_counts_match_the_model_checker() {
    let report = explore(ring_initial(3), alg2(), 2_000_000, |terminal| {
        assert!(terminal.fully_definite());
        assert!(terminal.aids.iter().all(|m| m.state() == AidState::True));
    });
    assert!(!report.found_cycle);
    assert_eq!(
        (report.visited, report.terminals),
        (RING3_STATES, RING3_TERMINALS),
        "3-ring reachable-state counts diverged from the model checker"
    );
}

#[test]
fn algorithm_1_livelocks_in_the_real_control_too() {
    let report = explore(ring_initial(2), alg1(), 200_000, |_| {});
    assert!(
        report.found_cycle,
        "the real Control must reproduce the §5.3 livelock without UDO checks"
    );
}

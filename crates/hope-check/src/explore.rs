//! Stateless schedule exploration: replay-from-scratch plus a bounded
//! exhaustive DFS over delivery orders.
//!
//! A **schedule** is encoded as the list of decisions taken at *branch
//! points* — states with more than one schedulable event. Singleton
//! frontiers are stepped automatically, so decision lists stay short and a
//! list replays identically however the intervening deterministic stretches
//! are shaped. The DFS is *stateless* in the model-checking sense: it never
//! snapshots the world (which contains live OS threads), it re-executes the
//! decision prefix from a fresh environment for every node.
//!
//! Two reductions keep the state count down:
//!
//! * **state-hash dedup** — branch states are fingerprinted
//!   ([`RtWorld::fingerprint`]) and not re-expanded, with the standard
//!   sleep-set caveat: a state is re-explored when reached with a sleep set
//!   that is not a superset of one it was already explored under.
//! * **sleep sets** — after exploring branch `i`, later siblings that
//!   *commute* with it (deliveries to distinct processes, see
//!   [`EventDesc::commutes_with`]) carry it as asleep, pruning the
//!   mirror-image interleaving.
//!
//! Cycles in the branch graph (a fingerprint re-encountered on the current
//! DFS path, or a repeating fingerprint along a deterministic stretch) are
//! reported as livelock witnesses — this is how the checker finds the
//! paper's §5.3 Algorithm 1 livelock.

use std::collections::{BTreeSet, HashMap, HashSet};

use hope_runtime::{EventDesc, PendingEvent};

use crate::oracle::{Oracle, Violation};
use crate::world::RtWorld;
use crate::Builder;

/// How a single schedule replay ended.
#[derive(Debug)]
pub enum ReplayEnd {
    /// No schedulable events remain; terminal oracles passed.
    Terminal,
    /// The decision list was exhausted at a state with several schedulable
    /// events.
    Branch {
        /// The schedulable events at the branch, sorted by `(time, tie)`.
        candidates: Vec<PendingEvent>,
        /// Descriptions of the singleton-frontier events auto-stepped
        /// after the last decision (used to age sleep sets).
        extension: Vec<EventDesc>,
    },
    /// An oracle fired.
    Violated(Violation),
    /// A state fingerprint repeated along a deterministic (singleton
    /// frontier) stretch: a livelock.
    Cycle,
    /// The per-schedule step budget ran out.
    Over,
}

/// Result of [`replay`].
#[derive(Debug)]
pub struct ReplayOutcome {
    /// How the replay ended.
    pub end: ReplayEnd,
    /// Fingerprint of the final state reached.
    pub fingerprint: u64,
    /// Events fired during this replay.
    pub steps: u64,
}

/// Re-executes a scenario from scratch, consuming `decisions` at branch
/// points (out-of-range decisions are clamped; singleton frontiers never
/// consume one). With `complete_with_zero`, exhausted decisions fall back
/// to choice 0 instead of stopping at the next branch — this is how a
/// shrunk counterexample replays to completion.
pub fn replay(
    build: Builder<'_>,
    decisions: &[u32],
    oracles: &mut [Box<dyn Oracle>],
    max_steps: u64,
    complete_with_zero: bool,
) -> ReplayOutcome {
    let mut world = RtWorld::new(build());
    for o in oracles.iter_mut() {
        o.reset();
    }
    let mut view = world.view();
    let mut di = 0usize;
    let mut extension: Vec<EventDesc> = Vec::new();
    let mut extension_fps: HashSet<u64> = HashSet::new();
    loop {
        let candidates = world.pending();
        if candidates.is_empty() {
            for o in oracles.iter_mut() {
                if let Err(v) = o.check_terminal(&view) {
                    return done(ReplayEnd::Violated(v), &world);
                }
            }
            return done(ReplayEnd::Terminal, &world);
        }
        if world.steps() >= max_steps {
            return done(ReplayEnd::Over, &world);
        }
        let exhausted = di >= decisions.len();
        if exhausted && !complete_with_zero {
            // Deterministic extension: watch for livelock cycles.
            if !extension_fps.insert(world.fingerprint()) {
                return done(ReplayEnd::Cycle, &world);
            }
            if candidates.len() > 1 {
                return done(
                    ReplayEnd::Branch {
                        candidates,
                        extension,
                    },
                    &world,
                );
            }
            extension.push(candidates[0].desc);
        }
        let choice = if candidates.len() == 1 {
            0
        } else if !exhausted {
            let c = (decisions[di] as usize).min(candidates.len() - 1);
            di += 1;
            c
        } else {
            0 // complete_with_zero
        };
        let event = candidates[choice].clone();
        for o in oracles.iter_mut() {
            o.on_event(&event, &view);
        }
        let stepped = world.step(choice);
        debug_assert!(stepped, "pending index cannot be stale within one step");
        view = world.view();
        for o in oracles.iter_mut() {
            if let Err(v) = o.check_step(&view) {
                return done(ReplayEnd::Violated(v), &world);
            }
        }
    }
}

fn done(end: ReplayEnd, world: &RtWorld) -> ReplayOutcome {
    ReplayOutcome {
        end,
        fingerprint: world.fingerprint(),
        steps: world.steps(),
    }
}

/// Budget knobs for [`dfs`].
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Stop expanding once this many distinct branch states were seen.
    pub max_states: usize,
    /// Per-schedule step budget (see [`replay`]).
    pub max_schedule_steps: u64,
    /// Enable the sleep-set reduction for commuting deliveries.
    pub sleep_sets: bool,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            max_states: 200_000,
            max_schedule_steps: 10_000,
            sleep_sets: true,
        }
    }
}

/// A violating schedule: the decision list to replay plus what it violates.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Branch decisions reproducing the violation (replay with
    /// `complete_with_zero = true`).
    pub decisions: Vec<u32>,
    /// The invariant that fired.
    pub violation: Violation,
}

/// What a [`dfs`] run covered and found.
#[derive(Debug, Default)]
pub struct DfsReport {
    /// Distinct branch-state fingerprints expanded.
    pub branch_states: usize,
    /// Distinct terminal-state fingerprints reached.
    pub terminals: usize,
    /// Schedule replays performed (stateless exploration re-executes the
    /// prefix for every node).
    pub replays: u64,
    /// Total events fired across all replays.
    pub total_steps: u64,
    /// A state recurred on one schedule: a livelock exists.
    pub found_cycle: bool,
    /// Decisions leading into the first cycle found.
    pub cycle_witness: Option<Vec<u32>>,
    /// A budget (states or steps) was hit before exhausting the space.
    pub truncated: bool,
    /// First oracle violation found, if any (the DFS stops on it).
    pub violation: Option<Counterexample>,
}

enum Node {
    Enter {
        decisions: Vec<u32>,
        sleep: Vec<(u64, EventDesc)>,
    },
    Exit {
        fp: u64,
    },
}

/// Bounded exhaustive DFS over all delivery orders of a scenario.
///
/// Every node is one branch state, re-reached by replaying its decision
/// prefix. Exploration order is decision-index order, so the first
/// schedule explored is exactly the runtime's default virtual-time order.
/// Stops at the first oracle violation.
pub fn dfs(build: Builder<'_>, oracles: &mut [Box<dyn Oracle>], cfg: &DfsConfig) -> DfsReport {
    let mut report = DfsReport::default();
    // fp -> sleep sets (as content-hash sets) it was already explored under.
    let mut visited: HashMap<u64, Vec<BTreeSet<u64>>> = HashMap::new();
    let mut on_path: HashSet<u64> = HashSet::new();
    let mut terminals: HashSet<u64> = HashSet::new();
    let mut stack = vec![Node::Enter {
        decisions: Vec::new(),
        sleep: Vec::new(),
    }];
    while let Some(node) = stack.pop() {
        let (decisions, sleep) = match node {
            Node::Exit { fp } => {
                on_path.remove(&fp);
                continue;
            }
            Node::Enter { decisions, sleep } => (decisions, sleep),
        };
        report.replays += 1;
        let out = replay(build, &decisions, oracles, cfg.max_schedule_steps, false);
        report.total_steps += out.steps;
        match out.end {
            ReplayEnd::Violated(violation) => {
                report.violation = Some(Counterexample {
                    decisions,
                    violation,
                });
                break;
            }
            ReplayEnd::Terminal => {
                terminals.insert(out.fingerprint);
            }
            ReplayEnd::Cycle => {
                report.found_cycle = true;
                report.cycle_witness.get_or_insert(decisions);
            }
            ReplayEnd::Over => {
                report.truncated = true;
            }
            ReplayEnd::Branch {
                candidates,
                extension,
            } => {
                let fp = out.fingerprint;
                if on_path.contains(&fp) {
                    report.found_cycle = true;
                    report.cycle_witness.get_or_insert(decisions);
                    continue;
                }
                // Sleeping events stay asleep only while everything fired
                // since the parent branch commutes with them.
                let effective: Vec<(u64, EventDesc)> = if cfg.sleep_sets {
                    sleep
                        .into_iter()
                        .filter(|(_, d)| extension.iter().all(|e| d.commutes_with(e)))
                        .collect()
                } else {
                    Vec::new()
                };
                let sleep_key: BTreeSet<u64> = effective.iter().map(|(h, _)| *h).collect();
                let seen = visited.entry(fp).or_default();
                // Explored before under a sleep set no larger than this
                // one: that exploration covered at least as much.
                if seen.iter().any(|old| old.is_subset(&sleep_key)) {
                    continue;
                }
                seen.push(sleep_key);
                if visited.len() >= cfg.max_states {
                    report.truncated = true;
                    continue;
                }
                on_path.insert(fp);
                stack.push(Node::Exit { fp });
                let asleep = |c: &PendingEvent| effective.iter().any(|(h, _)| *h == c.content_hash);
                for i in (0..candidates.len()).rev() {
                    let chosen = &candidates[i];
                    if asleep(chosen) {
                        continue;
                    }
                    let mut child_sleep: Vec<(u64, EventDesc)> = effective
                        .iter()
                        .filter(|(_, d)| d.commutes_with(&chosen.desc))
                        .cloned()
                        .collect();
                    for earlier in candidates[..i].iter() {
                        if !asleep(earlier) && earlier.desc.commutes_with(&chosen.desc) {
                            child_sleep.push((earlier.content_hash, earlier.desc));
                        }
                    }
                    let mut child_decisions = decisions.clone();
                    child_decisions.push(i as u32);
                    stack.push(Node::Enter {
                        decisions: child_decisions,
                        sleep: child_sleep,
                    });
                }
            }
        }
    }
    report.branch_states = visited.len();
    report.terminals = terminals.len();
    report
}

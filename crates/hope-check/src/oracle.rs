//! Invariant oracles: predicates over [`WorldView`]s checked after every
//! step and at every terminal (quiescent) state of a schedule.
//!
//! The built-ins cover the paper's central claims:
//!
//! * [`SafetyOracle`] — Theorem 5.1: no definite interval depends on a
//!   denied assumption.
//! * [`ConvergenceOracle`] — Algorithm 2 / Theorem 5.3: every terminal
//!   state of a well-formed workload is fully finalized.
//! * [`WaitFreedomOracle`] — §5's wait-free criterion, as a per-schedule
//!   step bound: a livelocking protocol exceeds any bound.
//! * [`CrashRecoveryOracle`] — §4.3 recovery: a crash/replay cycle must
//!   preserve the definite frontier that existed when the crash fired.
//! * [`DemoOrderOracle`] — *intentionally broken*, asserting a property
//!   the protocol never promises; used to exercise the shrinker.

use std::collections::{BTreeMap, BTreeSet};

use hope_core::AidState;
use hope_runtime::{EventDesc, PendingEvent};
use hope_types::{AidId, IntervalId, ProcessId};

use crate::world::WorldView;

/// A violated invariant: which oracle fired and a human-readable account.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the oracle that fired.
    pub oracle: &'static str,
    /// What went wrong, with enough identifiers to debug a replay.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// An invariant checked along every explored schedule. Oracles are stateful
/// (e.g. [`CrashRecoveryOracle`] remembers pre-crash frontiers) and are
/// [`reset`](Oracle::reset) at the start of each schedule replay.
pub trait Oracle {
    /// Short stable name, used in violation reports.
    fn name(&self) -> &'static str;

    /// Called at the start of every schedule, before any step.
    fn reset(&mut self) {}

    /// Called immediately *before* `event` fires, with the view of the
    /// state it fires in.
    fn on_event(&mut self, event: &PendingEvent, view: &WorldView) {
        let _ = (event, view);
    }

    /// Checked after every step.
    fn check_step(&mut self, view: &WorldView) -> Result<(), Violation> {
        let _ = view;
        Ok(())
    }

    /// Checked once the schedule reaches a terminal (no schedulable
    /// events) state.
    fn check_terminal(&mut self, view: &WorldView) -> Result<(), Violation>;
}

fn violation(oracle: &'static str, detail: String) -> Violation {
    Violation { oracle, detail }
}

/// Theorem 5.1 safety: once an interval is definite (its effects are
/// released to the world), no assumption it was triggered by may resolve
/// `False`. AIDs with recorded contract violations are exempt — a
/// conflicting affirm+deny means the *user program* broke the
/// one-resolution contract the theorem presumes.
#[derive(Debug, Default)]
pub struct SafetyOracle;

impl SafetyOracle {
    fn scan(&self, view: &WorldView) -> Result<(), Violation> {
        let denied: BTreeSet<AidId> = view
            .aids
            .iter()
            .filter(|(_, m)| m.state() == AidState::False && m.contract_violations() == 0)
            .map(|(a, _)| *a)
            .collect();
        if denied.is_empty() {
            return Ok(());
        }
        for (pid, history) in &view.histories {
            for rec in history {
                if !rec.definite {
                    continue;
                }
                if let Some(bad) = rec.trigger.iter().find(|a| denied.contains(a)) {
                    return Err(violation(
                        self.name(),
                        format!(
                            "definite interval {:?} of process {} was triggered by \
                             denied AID {:?}",
                            rec.id, pid, bad
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Oracle for SafetyOracle {
    fn name(&self) -> &'static str {
        "safety-5.1"
    }

    fn check_step(&mut self, view: &WorldView) -> Result<(), Violation> {
        self.scan(view)
    }

    fn check_terminal(&mut self, view: &WorldView) -> Result<(), Violation> {
        self.scan(view)
    }
}

/// Algorithm 2 convergence: a terminal state of a well-formed workload has
/// no panics, no process still blocked in `receive`, no pending rollback,
/// and every interval finalized. Only sound for scenarios where no message
/// can be lost for good (no crash windows), hence not used on chaos
/// scenarios.
#[derive(Debug, Default)]
pub struct ConvergenceOracle;

impl Oracle for ConvergenceOracle {
    fn name(&self) -> &'static str {
        "convergence-alg2"
    }

    fn check_terminal(&mut self, view: &WorldView) -> Result<(), Violation> {
        if let Some((pid, msg)) = view.report.panics.first() {
            return Err(violation(
                self.name(),
                format!("process {pid} panicked: {msg}"),
            ));
        }
        if let Some((pid, name)) = view.report.blocked.first() {
            return Err(violation(
                self.name(),
                format!("terminal state leaves {name} ({pid}) blocked in receive"),
            ));
        }
        if let Some(pid) = view.rollbacks_pending.first() {
            return Err(violation(
                self.name(),
                format!("terminal state leaves process {pid} with an unexecuted rollback"),
            ));
        }
        for (pid, history) in &view.histories {
            if let Some(rec) = history.iter().find(|r| !r.definite) {
                return Err(violation(
                    self.name(),
                    format!(
                        "terminal state leaves interval {:?} of process {} speculative \
                         (ido = {:?})",
                        rec.id, pid, rec.ido
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Wait-freedom as a step bound: every schedule of the scenario must
/// quiesce within `max_steps` events. Under Algorithm 1 the mutual-affirm
/// ring recirculates Replace messages forever, so any bound is eventually
/// exceeded; under Algorithm 2 the bound certifies progress.
#[derive(Debug)]
pub struct WaitFreedomOracle {
    /// Maximum events a single schedule may fire.
    pub max_steps: u64,
}

impl Oracle for WaitFreedomOracle {
    fn name(&self) -> &'static str {
        "wait-freedom"
    }

    fn check_step(&mut self, view: &WorldView) -> Result<(), Violation> {
        if view.steps > self.max_steps {
            return Err(violation(
                self.name(),
                format!(
                    "schedule exceeded {} steps without quiescing ({} events pending)",
                    self.max_steps, view.pending
                ),
            ));
        }
        Ok(())
    }

    fn check_terminal(&mut self, _view: &WorldView) -> Result<(), Violation> {
        Ok(())
    }
}

/// Crash-recovery equivalence: when a crash fires, the victim's definite
/// intervals are the state the paper's §4.3 recovery must reproduce.
/// At the terminal state, every such interval must still exist and still
/// be definite — replay may extend the history but never contradict the
/// pre-crash definite frontier.
#[derive(Debug, Default)]
pub struct CrashRecoveryOracle {
    frontiers: BTreeMap<ProcessId, BTreeSet<IntervalId>>,
}

impl Oracle for CrashRecoveryOracle {
    fn name(&self) -> &'static str {
        "crash-recovery"
    }

    fn reset(&mut self) {
        self.frontiers.clear();
    }

    fn on_event(&mut self, event: &PendingEvent, view: &WorldView) {
        let EventDesc::Crash(pid) = event.desc else {
            return;
        };
        let Some((_, history)) = view.histories.iter().find(|(p, _)| *p == pid) else {
            return;
        };
        // A crash can fire before the victim's thread ever ran, while its
        // HOPElib still holds the unbound placeholder history; only
        // intervals actually owned by the process count as its frontier.
        let definite: BTreeSet<IntervalId> = history
            .iter()
            .filter(|r| r.definite && r.id.process() == pid)
            .map(|r| r.id)
            .collect();
        // Later crashes of the same process extend (never shrink) the
        // recorded frontier: definiteness is monotone.
        self.frontiers.entry(pid).or_default().extend(definite);
    }

    fn check_terminal(&mut self, view: &WorldView) -> Result<(), Violation> {
        for (pid, frontier) in &self.frontiers {
            let Some((_, history)) = view.histories.iter().find(|(p, _)| p == pid) else {
                return Err(violation(
                    self.name(),
                    format!("crashed process {pid} is no longer tracked"),
                ));
            };
            for iid in frontier {
                match history.iter().find(|r| r.id == *iid) {
                    Some(rec) if rec.definite => {}
                    Some(_) => {
                        return Err(violation(
                            self.name(),
                            format!(
                                "interval {iid:?} of {pid} was definite before the crash \
                                 but speculative after recovery"
                            ),
                        ));
                    }
                    None => {
                        return Err(violation(
                            self.name(),
                            format!(
                                "interval {iid:?} of {pid} was definite before the crash \
                                 but missing after recovery"
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// **Intentionally broken** oracle for shrinker demonstrations: claims the
/// lowest-numbered AID always resolves first. The protocol promises no
/// such order, so some — but not all — schedules violate it, which makes
/// the violating decision lists interesting to shrink.
#[derive(Debug, Default)]
pub struct DemoOrderOracle;

impl DemoOrderOracle {
    fn scan(&self, view: &WorldView) -> Result<(), Violation> {
        let lowest = view.aids.iter().map(|(a, _)| *a).min();
        let Some(lowest) = lowest else { return Ok(()) };
        let lowest_final = view
            .aids
            .iter()
            .any(|(a, m)| *a == lowest && m.state().is_final());
        if lowest_final {
            return Ok(());
        }
        if let Some((a, m)) = view.aids.iter().find(|(_, m)| m.state().is_final()) {
            return Err(violation(
                self.name(),
                format!(
                    "AID {:?} resolved {} before lowest AID {:?} resolved \
                     (a property HOPE never promises — this oracle is a demo)",
                    a,
                    m.state(),
                    lowest
                ),
            ));
        }
        Ok(())
    }
}

impl Oracle for DemoOrderOracle {
    fn name(&self) -> &'static str {
        "demo-lowest-aid-first"
    }

    fn check_step(&mut self, view: &WorldView) -> Result<(), Violation> {
        self.scan(view)
    }

    fn check_terminal(&mut self, view: &WorldView) -> Result<(), Violation> {
        self.scan(view)
    }
}

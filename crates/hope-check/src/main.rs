//! `hope-check` — drive the model checker from the command line.
//!
//! ```text
//! hope-check ci                         # the fixed-budget CI suite
//! hope-check explore ring2             # bounded exhaustive DFS
//! hope-check explore ring2-alg1       # expect the §5.3 livelock
//! hope-check walk chaos2 --schedules 200 --seed 7
//! hope-check replay ring2 --decisions 2,0,1
//! hope-check shrink-demo              # break an oracle, shrink the trace
//! ```
//!
//! Scenarios: `ring2`, `ring3` (Algorithm 2 mutual-affirm rings),
//! `ring2-alg1`, `ring3-alg1` (Algorithm 1, livelocks), `chaos2`,
//! `chaos3` (Algorithm 2 plus a crash/restart of ring process 0 and the
//! reliable-delivery sublayer), `disk2`, `disk3` (the chaos ring with
//! durable op-logs whose crash images take seeded storage faults),
//! `storm2-adaptive`, `storm3-adaptive`, `storm2-pessimistic`,
//! `storm3-pessimistic` (a ring plus a persistently denied AID under the
//! DESIGN.md §9 speculation-control policies).
//! Everything is deterministic given the flags; all run within a small
//! fixed budget (see EXPERIMENTS.md E-check).

use std::process::ExitCode;
use std::time::Instant;

use hope_check::{
    dfs, random_walk, shrink, ConvergenceOracle, CrashRecoveryOracle, DemoOrderOracle, DfsConfig,
    Oracle, SafetyOracle, WaitFreedomOracle, WalkConfig,
};
use hope_core::{HopeEnv, SpecPolicy};
use hope_sim::scenarios;

struct Scenario {
    name: &'static str,
    build: Box<dyn Fn() -> HopeEnv>,
    /// Algorithm 1 scenarios are *expected* to livelock.
    expect_livelock: bool,
    /// Convergence is only promised when no message can be lost for good.
    lossless: bool,
    has_crashes: bool,
}

fn scenario(name: &str, seed: u64) -> Option<Scenario> {
    // The storm scenarios use a threshold low enough that a single denied
    // observation throttles the process, so the checker explores the
    // parked-guess wake paths, not just unthrottled optimism.
    let adaptive = || SpecPolicy::adaptive(0.1, 4, 0.05).expect("valid checker policy");
    let (label, build): (&'static str, Box<dyn Fn() -> HopeEnv>) = match name {
        "ring2" => ("ring2", Box::new(move || scenarios::ring(2, true, seed))),
        "ring3" => ("ring3", Box::new(move || scenarios::ring(3, true, seed))),
        "ring2-alg1" => (
            "ring2-alg1",
            Box::new(move || scenarios::ring(2, false, seed)),
        ),
        "ring3-alg1" => (
            "ring3-alg1",
            Box::new(move || scenarios::ring(3, false, seed)),
        ),
        "chaos2" => ("chaos2", Box::new(move || scenarios::chaos_ring(2, seed))),
        "chaos3" => ("chaos3", Box::new(move || scenarios::chaos_ring(3, seed))),
        "disk2" => ("disk2", Box::new(move || scenarios::disk_ring(2, seed))),
        "disk3" => ("disk3", Box::new(move || scenarios::disk_ring(3, seed))),
        "storm2-adaptive" => (
            "storm2-adaptive",
            Box::new(move || scenarios::deny_storm(2, adaptive(), seed)),
        ),
        "storm3-adaptive" => (
            "storm3-adaptive",
            Box::new(move || scenarios::deny_storm(3, adaptive(), seed)),
        ),
        "storm2-pessimistic" => (
            "storm2-pessimistic",
            Box::new(move || scenarios::deny_storm(2, SpecPolicy::Pessimistic, seed)),
        ),
        "storm3-pessimistic" => (
            "storm3-pessimistic",
            Box::new(move || scenarios::deny_storm(3, SpecPolicy::Pessimistic, seed)),
        ),
        _ => return None,
    };
    let alg1 = name.ends_with("-alg1");
    let chaos = name.starts_with("chaos") || name.starts_with("disk");
    Some(Scenario {
        name: label,
        build,
        expect_livelock: alg1,
        lossless: !chaos,
        has_crashes: chaos,
    })
}

fn oracles_for(s: &Scenario, max_steps: u64) -> Vec<Box<dyn Oracle>> {
    let mut set: Vec<Box<dyn Oracle>> = vec![Box::new(SafetyOracle)];
    if s.lossless && !s.expect_livelock {
        set.push(Box::new(ConvergenceOracle));
        set.push(Box::new(WaitFreedomOracle { max_steps }));
    }
    if s.has_crashes {
        set.push(Box::new(CrashRecoveryOracle::default()));
    }
    set
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
        .unwrap_or(default)
}

fn fmt_decisions(d: &[u32]) -> String {
    let parts: Vec<String> = d.iter().map(|x| x.to_string()).collect();
    parts.join(",")
}

fn cmd_explore(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("explore needs a scenario")?;
    let seed = num(args, "--seed", 1);
    let s = scenario(name, seed).ok_or_else(|| format!("unknown scenario {name}"))?;
    let cfg = DfsConfig {
        max_states: num(args, "--max-states", 200_000) as usize,
        max_schedule_steps: num(args, "--max-steps", 2_000),
        sleep_sets: !args.iter().any(|a| a == "--no-sleep"),
    };
    let mut oracles = oracles_for(&s, cfg.max_schedule_steps);
    let start = Instant::now();
    let report = dfs(&|| (s.build)(), &mut oracles, &cfg);
    println!(
        "explore {}: {} branch states, {} terminal states, {} replays, {} steps, {:.2?}",
        s.name,
        report.branch_states,
        report.terminals,
        report.replays,
        report.total_steps,
        start.elapsed()
    );
    if report.truncated {
        println!("  (budget hit: exploration truncated)");
    }
    if let Some(cx) = &report.violation {
        return Err(format!(
            "violation: {}\n  replay with: hope-check replay {} --seed {} --decisions {}",
            cx.violation,
            s.name,
            seed,
            fmt_decisions(&cx.decisions)
        ));
    }
    match (report.found_cycle, s.expect_livelock) {
        (true, true) => {
            let witness = report.cycle_witness.clone().unwrap_or_default();
            println!(
                "  livelock cycle found (expected for Algorithm 1); witness decisions: [{}]",
                fmt_decisions(&witness)
            );
        }
        (false, true) => return Err("expected the Algorithm 1 livelock, found none".into()),
        (true, false) => {
            return Err(format!(
                "unexpected livelock; witness decisions: [{}]",
                fmt_decisions(&report.cycle_witness.clone().unwrap_or_default())
            ))
        }
        (false, false) => {}
    }
    // Pinned state count: CI uses this to assert that a transport or
    // runtime change did not alter the model-checked state space.
    if let Some(expect) = flag(args, "--expect-states") {
        let expect: u64 = expect
            .parse()
            .map_err(|_| format!("bad --expect-states: {expect}"))?;
        if report.branch_states as u64 != expect {
            return Err(format!(
                "pinned state count changed: explored {} branch states, pinned {expect}",
                report.branch_states
            ));
        }
    }
    Ok(())
}

fn cmd_walk(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("walk needs a scenario")?;
    let seed = num(args, "--seed", 1);
    let s = scenario(name, seed).ok_or_else(|| format!("unknown scenario {name}"))?;
    let cfg = WalkConfig {
        schedules: num(args, "--schedules", 100),
        max_schedule_steps: num(args, "--max-steps", 10_000),
        seed: num(args, "--walk-seed", seed),
    };
    let mut oracles = oracles_for(&s, cfg.max_schedule_steps);
    let start = Instant::now();
    let report = random_walk(&|| (s.build)(), &mut oracles, &cfg);
    println!(
        "walk {}: {} schedules ({} terminal, {} abandoned), {} steps, {} distinct terminal states, {:.2?}",
        s.name,
        report.schedules,
        report.terminal_runs,
        report.abandoned,
        report.total_steps,
        report.distinct_terminals,
        start.elapsed()
    );
    if let Some(cx) = &report.violation {
        return Err(format!(
            "violation: {}\n  replay with: hope-check replay {} --seed {} --decisions {}",
            cx.violation,
            s.name,
            seed,
            fmt_decisions(&cx.decisions)
        ));
    }
    // Pinned terminal-state count, the walk-mode analogue of
    // `--expect-states` (see cmd_explore).
    if let Some(expect) = flag(args, "--expect-terminals") {
        let expect: u64 = expect
            .parse()
            .map_err(|_| format!("bad --expect-terminals: {expect}"))?;
        if report.distinct_terminals as u64 != expect {
            return Err(format!(
                "pinned terminal count changed: {} distinct terminal states, pinned {expect}",
                report.distinct_terminals
            ));
        }
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("replay needs a scenario")?;
    let seed = num(args, "--seed", 1);
    let s = scenario(name, seed).ok_or_else(|| format!("unknown scenario {name}"))?;
    let decisions: Vec<u32> = flag(args, "--decisions")
        .map(|v| {
            v.split(',')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse().unwrap_or_else(|_| panic!("bad decision {p}")))
                .collect()
        })
        .unwrap_or_default();
    let mut oracles = oracles_for(&s, u64::MAX);
    // Counterexamples found by shrink-demo fire the deliberately broken
    // ordering oracle; opt into it to reproduce them.
    if args.iter().any(|a| a == "--demo-oracle") {
        oracles.push(Box::new(DemoOrderOracle));
    }
    // With `--trace out.json`, enable the causal tracer on the replayed
    // environment and export its Chrome trace afterwards — the timeline of
    // a shrunken counterexample is usually the fastest way to read it.
    let trace_out = flag(args, "--trace");
    let handles: std::cell::RefCell<
        Option<(
            std::sync::Arc<hope_types::TraceCollector>,
            std::sync::Arc<hope_core::HopeMetrics>,
        )>,
    > = std::cell::RefCell::new(None);
    let out = hope_check::explore::replay(
        &|| {
            let env = (s.build)();
            if trace_out.is_some() {
                env.enable_tracing(1 << 16);
                *handles.borrow_mut() = Some((env.tracer(), env.hope_metrics()));
            }
            env
        },
        &decisions,
        &mut oracles,
        num(args, "--max-steps", 10_000),
        true,
    );
    println!(
        "replay {} decisions=[{}]: {} steps, end = {:?}",
        s.name,
        fmt_decisions(&decisions),
        out.steps,
        match &out.end {
            hope_check::explore::ReplayEnd::Violated(v) => format!("VIOLATED {v}"),
            other => format!("{other:?}"),
        }
    );
    if let Some(path) = trace_out {
        let (tracer, metrics) = handles
            .into_inner()
            .expect("replay built the environment under --trace");
        hope_sim::trace_export::write_trace_file(
            std::path::Path::new(&path),
            &tracer,
            &metrics.attribution(),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path}");
    }
    Ok(())
}

/// Breaks an (intentionally bogus) ordering oracle on the 2-ring, then
/// shrinks the violating schedule — the end-to-end demo of the
/// counterexample pipeline. Prints the minimal replayable seed + decisions.
fn cmd_shrink_demo(args: &[String]) -> Result<(), String> {
    let seed = num(args, "--seed", 42);
    let build_env = || scenarios::ring(2, true, seed);
    let build: &dyn Fn() -> HopeEnv = &build_env;
    let mut oracles: Vec<Box<dyn Oracle>> = vec![Box::new(DemoOrderOracle)];
    let walk = random_walk(
        &build,
        &mut oracles,
        &WalkConfig {
            schedules: 200,
            max_schedule_steps: 2_000,
            seed,
        },
    );
    let Some(cx) = walk.violation else {
        return Err("demo oracle never fired — the walk should find an order violation".into());
    };
    println!(
        "violation after {} steps: {}\n  original decisions ({}): [{}]",
        walk.total_steps,
        cx.violation,
        cx.decisions.len(),
        fmt_decisions(&cx.decisions)
    );
    let report = shrink(&build, &mut oracles, &cx.decisions, 2_000, 2_000)
        .ok_or("original counterexample failed to replay")?;
    println!(
        "shrunk {} -> {} decisions in {} trials",
        report.original.len(),
        report.minimal.len(),
        report.trials
    );
    println!(
        "minimal counterexample: seed={} decisions=[{}]\n  ({})",
        seed,
        fmt_decisions(&report.minimal),
        report.violation
    );
    println!(
        "  replay with: hope-check replay ring2 --seed {} --demo-oracle --decisions {}",
        seed,
        fmt_decisions(&report.minimal)
    );
    Ok(())
}

/// The CI suite: fixed seeds, fixed budgets, deterministic, < ~2 min.
fn cmd_ci(args: &[String]) -> Result<(), String> {
    let start = Instant::now();
    // 1. Exhaustive: every delivery order of the 2-ring converges under
    //    Algorithm 2.
    cmd_explore(&["ring2".into(), "--seed".into(), "1".into()])?;
    // 2. Exhaustive: Algorithm 1 livelocks on the same ring.
    cmd_explore(&[
        "ring2-alg1".into(),
        "--seed".into(),
        "1".into(),
        "--max-states".into(),
        num(args, "--max-states", 50_000).to_string(),
    ])?;
    // 3. Random walks: 3-ring under Algorithm 2.
    cmd_walk(&[
        "ring3".into(),
        "--schedules".into(),
        "150".into(),
        "--walk-seed".into(),
        "3405691582".into(), // 0xCAFEBABE
    ])?;
    // 4. Random walks: chaos ring (crash + retransmissions), safety and
    //    crash-recovery equivalence only.
    cmd_walk(&[
        "chaos2".into(),
        "--schedules".into(),
        "150".into(),
        "--walk-seed".into(),
        "7".into(),
    ])?;
    // 5. Random walks: disk ring (crash with a storage-faulted durable
    //    op-log) — recovery must stay safe on every schedule even when the
    //    crash image is torn, truncated, or bit-flipped.
    cmd_walk(&[
        "disk2".into(),
        "--schedules".into(),
        "150".into(),
        "--walk-seed".into(),
        "11".into(),
    ])?;
    // 6. Deny storm under adaptive throttling and full pessimism: a
    //    persistently denied AID must not cost convergence or wait-freedom
    //    whichever way the speculation policy reacts (DESIGN.md §9).
    cmd_explore(&["storm2-adaptive".into(), "--seed".into(), "1".into()])?;
    cmd_walk(&[
        "storm3-adaptive".into(),
        "--schedules".into(),
        "150".into(),
        "--walk-seed".into(),
        "13".into(),
    ])?;
    cmd_explore(&["storm2-pessimistic".into(), "--seed".into(), "1".into()])?;
    cmd_walk(&[
        "storm3-pessimistic".into(),
        "--schedules".into(),
        "150".into(),
        "--walk-seed".into(),
        "17".into(),
    ])?;
    // 7. The counterexample pipeline end-to-end.
    cmd_shrink_demo(&["--seed".into(), "42".into()])?;
    println!("ci suite passed in {:.2?}", start.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => ("ci", Vec::new()),
    };
    let result = match cmd {
        "ci" => cmd_ci(&rest),
        "explore" => cmd_explore(&rest),
        "walk" => cmd_walk(&rest),
        "replay" => cmd_replay(&rest),
        "shrink-demo" => cmd_shrink_demo(&rest),
        "--help" | "-h" | "help" => {
            println!(
                "usage: hope-check [ci|explore|walk|replay|shrink-demo] [scenario] [flags]\n\
                 scenarios: ring2 ring3 ring2-alg1 ring3-alg1 chaos2 chaos3 disk2 disk3\n\
                 \x20          storm2-adaptive storm3-adaptive storm2-pessimistic storm3-pessimistic\n\
                 flags: --seed N --decisions 1,0,2 --schedules N --max-states N --max-steps N\n\
                 \x20      --walk-seed N --no-sleep --demo-oracle --trace out.json (replay only)\n\
                 \x20      --expect-states N (explore) --expect-terminals N (walk): fail unless\n\
                 \x20      the explored state counts equal the pinned values"
            );
            Ok(())
        }
        other => Err(format!("unknown command {other}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hope-check: {msg}");
            ExitCode::FAILURE
        }
    }
}

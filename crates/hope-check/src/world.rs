//! A steppable world: one [`HopeEnv`] driven through the runtime's
//! external scheduler hook, plus the read-only [`WorldView`] oracles
//! inspect after every step.

use hope_core::{AidMachine, HopeEnv, IntervalRecord, MetricsSnapshot};
use hope_runtime::{PendingEvent, RunReport};
use hope_types::{AidId, ProcessId};

/// One environment under checker control. The checker never calls
/// [`HopeEnv::run`]; every event firing goes through [`RtWorld::step`], so
/// the full schedule is a sequence of explicit decisions.
pub struct RtWorld {
    env: HopeEnv,
    steps: u64,
}

/// A read-only snapshot of the protocol-visible state, assembled once per
/// step for the oracles. Building it locks every HOPElib briefly; the
/// worlds checked here are small (a handful of processes), so this is
/// cheap relative to thread rendezvous costs.
#[derive(Debug, Clone)]
pub struct WorldView {
    /// Steps taken so far in this schedule.
    pub steps: u64,
    /// Number of currently schedulable events (0 = terminal state).
    pub pending: usize,
    /// Runtime report snapshot (panics, blocked processes, clock).
    pub report: RunReport,
    /// HOPE algorithm counters.
    pub metrics: MetricsSnapshot,
    /// Interval history of every tracked user process.
    pub histories: Vec<(ProcessId, Vec<IntervalRecord>)>,
    /// Every live AID state machine.
    pub aids: Vec<(AidId, AidMachine)>,
    /// Tracked user processes with a rollback accepted but not yet
    /// executed by the user thread.
    pub rollbacks_pending: Vec<ProcessId>,
}

impl RtWorld {
    /// Wraps a freshly built (un-run) environment.
    pub fn new(env: HopeEnv) -> Self {
        RtWorld { env, steps: 0 }
    }

    /// The currently schedulable events, sorted by `(time, tie)`.
    pub fn pending(&self) -> Vec<PendingEvent> {
        self.env.runtime().pending_events()
    }

    /// Fires the `n`-th pending event (an index into [`RtWorld::pending`]).
    /// Returns false if the index was stale.
    pub fn step(&mut self, n: usize) -> bool {
        let ok = self.env.runtime_mut().step_chosen(n);
        if ok {
            self.steps += 1;
        }
        ok
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Deterministic fingerprint of the protocol-visible state (see
    /// [`HopeEnv::state_hash`]).
    pub fn fingerprint(&self) -> u64 {
        self.env.state_hash()
    }

    /// Assembles the oracle view of the current state.
    pub fn view(&self) -> WorldView {
        let pending = self.env.runtime().pending_events().len();
        let histories = self
            .env
            .user_pids()
            .into_iter()
            .filter_map(|pid| Some((pid, self.env.history_of(pid)?)))
            .collect();
        let rollbacks_pending = self
            .env
            .user_pids()
            .into_iter()
            .filter(|&pid| matches!(self.env.pending_rollback_of(pid), Some(Some(_))))
            .collect();
        WorldView {
            steps: self.steps,
            pending,
            report: self.env.runtime().snapshot_report(),
            metrics: self.env.metrics(),
            histories,
            aids: self.env.aid_machines(),
            rollbacks_pending,
        }
    }

    /// The wrapped environment.
    pub fn env(&self) -> &HopeEnv {
        &self.env
    }
}

//! Greedy delta-debugging of violating schedules.
//!
//! A counterexample from the DFS or a random walk is a decision list;
//! shrinking tries ever-smaller variants — dropping chunks of decisions
//! (ddmin-style, halving the chunk size) and zeroing individual decisions
//! (choice 0 is the runtime's default virtual-time order, the "least
//! surprising" schedule) — keeping any variant that still violates, until
//! a fixpoint or the trial budget. Every trial replays the scenario from
//! scratch with `complete_with_zero`, so the shrunk list is directly
//! replayable: decisions are consumed at branch points and the schedule's
//! tail falls back to default order.

use crate::explore::{replay, ReplayEnd};
use crate::oracle::{Oracle, Violation};
use crate::Builder;

/// Outcome of [`shrink`].
#[derive(Debug)]
pub struct ShrinkReport {
    /// The decision list shrinking started from.
    pub original: Vec<u32>,
    /// The smallest violating decision list found.
    pub minimal: Vec<u32>,
    /// Replays spent.
    pub trials: u64,
    /// The violation the minimal list reproduces.
    pub violation: Violation,
}

/// Shrinks `decisions` to a (locally) minimal list that still violates an
/// oracle under zero-completion replay. Returns `None` when the input list
/// itself does not reproduce a violation within `max_steps`.
pub fn shrink(
    build: Builder<'_>,
    oracles: &mut [Box<dyn Oracle>],
    decisions: &[u32],
    max_steps: u64,
    max_trials: u64,
) -> Option<ShrinkReport> {
    let mut trials = 0u64;
    let mut check = |d: &[u32], trials: &mut u64| -> Option<Violation> {
        *trials += 1;
        match replay(build, d, oracles, max_steps, true).end {
            ReplayEnd::Violated(v) => Some(v),
            _ => None,
        }
    };
    let mut current = decisions.to_vec();
    let mut violation = check(&current, &mut trials)?;
    loop {
        let mut progress = false;
        // Chunk removal, halving granularity.
        let mut chunk = current.len().div_ceil(2).max(1);
        loop {
            let mut start = 0;
            while start < current.len() && trials < max_trials {
                let mut candidate = current.clone();
                candidate.drain(start..(start + chunk).min(candidate.len()));
                if let Some(v) = check(&candidate, &mut trials) {
                    current = candidate;
                    violation = v;
                    progress = true;
                    // Re-test the same offset: it now holds new decisions.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 || trials >= max_trials {
                break;
            }
            chunk /= 2;
        }
        // Zero individual decisions (prefer the default schedule).
        let mut i = 0;
        while i < current.len() && trials < max_trials {
            if current[i] != 0 {
                let mut candidate = current.clone();
                candidate[i] = 0;
                if let Some(v) = check(&candidate, &mut trials) {
                    current = candidate;
                    violation = v;
                    progress = true;
                }
            }
            i += 1;
        }
        if !progress || trials >= max_trials {
            break;
        }
    }
    Some(ShrinkReport {
        original: decisions.to_vec(),
        minimal: current,
        trials,
        violation,
    })
}

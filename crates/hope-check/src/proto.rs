//! Protocol-level exhaustive exploration over the **real** HOPElib.
//!
//! `hope-core/tests/exhaustive_interleavings.rs` explores the mutual-affirm
//! ring with the real [`AidMachine`] but a hand-written *model* of the
//! Control replace rule. This module closes that gap: the user side of
//! every transition runs the real [`LibState::handle_control`] (Algorithm 2
//! itself), with the library's history swapped in and out around the call.
//! There are no threads and no runtime — a state is a plain value, so the
//! engine can do exact-state (not hashed) deduplication and exhaustive DFS
//! exactly like the model test, and the two reachable-state counts can be
//! compared one-to-one (see `tests/proto_parity.rs`).
//!
//! The engine is only exercised on workloads that never roll back (the
//! rings): a rollback's second phase runs on the user *thread*, which this
//! thread-free engine deliberately does not model.

use std::collections::HashSet;
use std::sync::Arc;

use hope_core::{
    AidMachine, History, HopeConfig, HopeMetrics, IntervalOrigin, IntervalRecord, LibState,
    PendingRollback,
};
use hope_runtime::ControlApi;
use hope_types::{AidId, HopeMessage, IdoSet, IntervalId, Payload, ProcessId, VirtualTime};

/// AID `k` lives at process `100 + k` — the same convention as the model
/// test, so states correspond message-for-message.
const AID_BASE: u64 = 100;

/// Model AID identities.
pub fn aid(k: usize) -> AidId {
    AidId::from_raw(ProcessId::from_raw(AID_BASE + k as u64))
}

fn aid_index(pid: ProcessId) -> usize {
    (pid.as_raw() - AID_BASE) as usize
}

/// User process `p`'s identity.
pub fn user_pid(p: usize) -> ProcessId {
    ProcessId::from_raw(p as u64)
}

/// Process `p`'s single speculative interval (index 1; 0 is the root).
pub fn iid(p: usize) -> IntervalId {
    IntervalId::new(user_pid(p), 1)
}

/// One in-flight protocol message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoMsg {
    /// To AID `k`.
    ToAid(usize, HopeMessage),
    /// To the Control of user process `p`, from AID `k`.
    ToUser(usize, usize, HopeMessage),
}

/// The HOPElib-side state of one user process.
#[derive(Debug, Clone)]
pub struct UserSlot {
    /// The process's interval history (the real `History` type).
    pub history: History,
    /// An accepted-but-unexecuted rollback, if any.
    pub pending_rollback: Option<PendingRollback>,
}

/// One global protocol state: every AID machine, every user history, and
/// the multiset of in-flight messages (kept canonically sorted).
#[derive(Debug, Clone)]
pub struct ProtoState {
    /// AID machines, indexed by AID number.
    pub aids: Vec<AidMachine>,
    /// User HOPElib states, indexed by process number.
    pub users: Vec<UserSlot>,
    /// In-flight messages, canonically sorted.
    pub pending: Vec<ProtoMsg>,
}

/// Exact-equality key for deduplication ([`History`] itself is not `Eq`;
/// its interval records are).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    aids: Vec<AidMachine>,
    users: Vec<(Vec<IntervalRecord>, Option<PendingRollback>)>,
    pending: Vec<ProtoMsg>,
}

impl ProtoState {
    fn canonical(mut self) -> Self {
        self.pending.sort();
        self
    }

    fn key(&self) -> StateKey {
        StateKey {
            aids: self.aids.clone(),
            users: self
                .users
                .iter()
                .map(|u| (u.history.intervals().to_vec(), u.pending_rollback))
                .collect(),
            pending: self.pending.clone(),
        }
    }

    /// True when every user interval is definite.
    pub fn fully_definite(&self) -> bool {
        self.users.iter().all(|u| u.history.fully_definite())
    }
}

/// Collects what the real Control sends during one `handle_control` call.
struct CollectApi {
    pid: ProcessId,
    out: Vec<(ProcessId, Payload)>,
}

impl ControlApi for CollectApi {
    fn pid(&self) -> ProcessId {
        self.pid
    }
    fn now(&self) -> VirtualTime {
        VirtualTime::ZERO
    }
    fn send(&mut self, dst: ProcessId, payload: Payload) {
        self.out.push((dst, payload));
    }
    fn wake(&mut self) {}
}

/// Delivers pending message `idx`, returning the successor state. The user
/// side runs the real `LibState` (constructed fresh, bound, and loaded with
/// the state's history — `LibState` is not `Clone`, its state is).
pub fn step(state: &ProtoState, idx: usize, config: HopeConfig) -> ProtoState {
    let mut next = state.clone();
    let msg = next.pending.remove(idx);
    match msg {
        ProtoMsg::ToAid(k, m) => {
            let replies = next.aids[k].on_message(aid(k), m);
            for reply in replies {
                let p = reply.interval().process().as_raw() as usize;
                next.pending.push(ProtoMsg::ToUser(p, k, reply));
            }
        }
        ProtoMsg::ToUser(p, from_aid, m) => {
            let mut lib = LibState::new(config, Arc::new(HopeMetrics::new()));
            lib.bind(user_pid(p));
            lib.history = next.users[p].history.clone();
            lib.pending_rollback = next.users[p].pending_rollback;
            let mut api = CollectApi {
                pid: user_pid(p),
                out: Vec::new(),
            };
            lib.handle_control(ProcessId::from_raw(AID_BASE + from_aid as u64), m, &mut api);
            next.users[p].history = lib.history.clone();
            next.users[p].pending_rollback = lib.pending_rollback;
            for (dst, payload) in api.out {
                let Payload::Hope(hope) = payload else {
                    panic!("Control only sends protocol messages, got {payload:?}");
                };
                next.pending.push(ProtoMsg::ToAid(aid_index(dst), hope));
            }
        }
    }
    next.canonical()
}

/// The mutual-affirm ring of size `n`, set up exactly like the model
/// test's `ring_initial`: process `i` has one speculative interval
/// depending on AID `i` (registered: AIDs are `Hot`), has speculatively
/// affirmed AID `(i+1) mod n` (in `IHA`), and that affirm — subject to
/// `{AID i}` — is in flight.
pub fn ring_initial(n: usize) -> ProtoState {
    let mut aids = Vec::new();
    for i in 0..n {
        let mut machine = AidMachine::new();
        machine.on_message(aid(i), HopeMessage::Guess { iid: iid(i) });
        aids.push(machine);
    }
    let mut users = Vec::new();
    let mut pending = Vec::new();
    for i in 0..n {
        let mut history = History::new(user_pid(i));
        let id = history.open_interval(IntervalOrigin::ExplicitGuess { op: 0 }, [aid(i)]);
        assert_eq!(id, iid(i));
        history
            .get_mut(id)
            .expect("just opened")
            .iha
            .insert(aid((i + 1) % n));
        users.push(UserSlot {
            history,
            pending_rollback: None,
        });
        pending.push(ProtoMsg::ToAid(
            (i + 1) % n,
            HopeMessage::Affirm {
                iid: Some(iid(i)),
                ido: IdoSet::singleton(aid(i)),
            },
        ));
    }
    ProtoState {
        aids,
        users,
        pending,
    }
    .canonical()
}

/// Coverage summary of [`explore`].
#[derive(Debug)]
pub struct ProtoReport {
    /// Distinct states visited (terminal states included), the number the
    /// model test's `explore` also reports.
    pub visited: usize,
    /// Distinct terminal (no messages in flight) states.
    pub terminals: usize,
    /// The state graph contains a cycle (livelock).
    pub found_cycle: bool,
}

/// Exhaustive DFS over all delivery orders, with exact-state dedup and
/// on-stack cycle detection — the same exploration the model test runs,
/// but with the real Control. Panics if more than `limit` states are
/// reached. `on_terminal` sees every distinct terminal state once.
pub fn explore(
    initial: ProtoState,
    config: HopeConfig,
    limit: usize,
    mut on_terminal: impl FnMut(&ProtoState),
) -> ProtoReport {
    let mut visited: HashSet<StateKey> = HashSet::new();
    let mut on_stack: HashSet<StateKey> = HashSet::new();
    let mut terminals = 0usize;
    let mut found_cycle = false;
    enum Frame {
        Enter(ProtoState),
        Exit(StateKey),
    }
    let mut stack = vec![Frame::Enter(initial)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Exit(key) => {
                on_stack.remove(&key);
            }
            Frame::Enter(state) => {
                let key = state.key();
                if on_stack.contains(&key) {
                    found_cycle = true;
                    continue;
                }
                if !visited.insert(key.clone()) {
                    continue;
                }
                assert!(
                    visited.len() <= limit,
                    "state space exceeded {limit} states"
                );
                if state.pending.is_empty() {
                    terminals += 1;
                    on_terminal(&state);
                    continue;
                }
                on_stack.insert(key.clone());
                stack.push(Frame::Exit(key));
                for idx in 0..state.pending.len() {
                    stack.push(Frame::Enter(step(&state, idx, config)));
                }
            }
        }
    }
    ProtoReport {
        visited: visited.len(),
        terminals,
        found_cycle,
    }
}

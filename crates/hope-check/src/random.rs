//! Seeded random walks: many independent schedules, each choosing
//! uniformly among the schedulable events at every branch point. Covers
//! depths the bounded DFS cannot reach and is the mode of choice for the
//! chaos scenarios, where retransmission timers blow up the branch factor.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::explore::Counterexample;
use crate::oracle::Oracle;
use crate::world::RtWorld;
use crate::Builder;

/// Budget knobs for [`random_walk`].
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Number of independent schedules to run.
    pub schedules: u64,
    /// Step budget per schedule (a schedule hitting it is abandoned
    /// without a terminal check — random walks cannot tell livelock from
    /// slow convergence).
    pub max_schedule_steps: u64,
    /// Base seed; schedule `s` derives its own generator from
    /// `seed` and `s`, so runs are reproducible and schedules independent.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            schedules: 100,
            max_schedule_steps: 10_000,
            seed: 0,
        }
    }
}

/// What a [`random_walk`] covered and found.
#[derive(Debug, Default)]
pub struct WalkReport {
    /// Schedules completed (including abandoned ones).
    pub schedules: u64,
    /// Total events fired.
    pub total_steps: u64,
    /// Schedules that reached a terminal state.
    pub terminal_runs: u64,
    /// Distinct terminal-state fingerprints seen.
    pub distinct_terminals: usize,
    /// Schedules abandoned at the step budget.
    pub abandoned: u64,
    /// First oracle violation, with the branch decisions that reproduce it
    /// (the walk stops on it).
    pub violation: Option<Counterexample>,
}

/// Runs `cfg.schedules` independent random schedules, checking `oracles`
/// along each. Stops at the first violation; the reported decision list
/// replays it exactly (decisions are recorded only at branch points,
/// matching [`replay`](crate::explore::replay) semantics).
pub fn random_walk(
    build: Builder<'_>,
    oracles: &mut [Box<dyn Oracle>],
    cfg: &WalkConfig,
) -> WalkReport {
    let mut report = WalkReport::default();
    let mut terminals = std::collections::HashSet::new();
    for s in 0..cfg.schedules {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut world = RtWorld::new(build());
        for o in oracles.iter_mut() {
            o.reset();
        }
        let mut view = world.view();
        let mut decisions: Vec<u32> = Vec::new();
        report.schedules += 1;
        loop {
            let candidates = world.pending();
            if candidates.is_empty() {
                for o in oracles.iter_mut() {
                    if let Err(v) = o.check_terminal(&view) {
                        report.violation = Some(Counterexample {
                            decisions,
                            violation: v,
                        });
                        report.total_steps += world.steps();
                        return report;
                    }
                }
                report.terminal_runs += 1;
                terminals.insert(world.fingerprint());
                break;
            }
            if world.steps() >= cfg.max_schedule_steps {
                report.abandoned += 1;
                break;
            }
            let choice = if candidates.len() == 1 {
                0
            } else {
                let c = rng.random_range(0..candidates.len());
                decisions.push(c as u32);
                c
            };
            let event = candidates[choice].clone();
            for o in oracles.iter_mut() {
                o.on_event(&event, &view);
            }
            world.step(choice);
            view = world.view();
            for o in oracles.iter_mut() {
                if let Err(v) = o.check_step(&view) {
                    report.violation = Some(Counterexample {
                        decisions,
                        violation: v,
                    });
                    report.total_steps += world.steps();
                    return report;
                }
            }
        }
        report.total_steps += world.steps();
    }
    report.distinct_terminals = terminals.len();
    report
}

//! # hope-check — a schedule-exploring model checker for HOPE
//!
//! The paper argues Lemma 5.1 "by a construction that exhaustively shows"
//! that every conflict between concurrent affirms resolves, and Theorem 5.3
//! rests on considering all delivery orders. This crate mechanizes that
//! argument against the **real** stack: scenarios are ordinary
//! [`HopeEnv`](hope_core::HopeEnv) environments, and the checker drives the
//! runtime through its external scheduler hook
//! ([`SimRuntime::pending_events`](hope_runtime::SimRuntime::pending_events)
//! / [`step_chosen`](hope_runtime::SimRuntime::step_chosen)) so *every*
//! nondeterministic choice is a checker decision.
//!
//! Pieces:
//!
//! * [`world`] — wraps an environment as a steppable, fingerprintable
//!   world; a schedule is a list of decisions taken at branch points.
//! * [`oracle`] — invariant oracles checked after every step and at every
//!   terminal state: Theorem 5.1 safety, Algorithm 2 convergence,
//!   wait-freedom step bounds, and crash-recovery equivalence.
//! * [`explore`] — bounded exhaustive DFS over delivery orders with
//!   state-hash deduplication, on-path cycle detection (the §5.3 livelock
//!   witness) and a sleep-set-style reduction for commuting deliveries.
//! * [`random`] — seeded random walks for depths DFS cannot reach.
//! * [`shrink`] — greedy delta debugging reducing a violating schedule to
//!   a minimal replayable decision list.
//! * [`proto`] — a protocol-level exhaustive engine over the real
//!   [`LibState`](hope_core::LibState) and
//!   [`AidMachine`](hope_core::AidMachine) (no runtime, no threads), used
//!   to cross-check reachable-state counts against the model-based test
//!   in `hope-core/tests/exhaustive_interleavings.rs`.
//!
//! The `hope-check` binary packages fixed-budget suites for CI; see
//! EXPERIMENTS.md §E-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod oracle;
pub mod proto;
pub mod random;
pub mod shrink;
pub mod world;

pub use explore::{dfs, Counterexample, DfsConfig, DfsReport};
pub use oracle::{
    ConvergenceOracle, CrashRecoveryOracle, DemoOrderOracle, Oracle, SafetyOracle, Violation,
    WaitFreedomOracle,
};
pub use random::{random_walk, WalkConfig, WalkReport};
pub use shrink::{shrink, ShrinkReport};
pub use world::{RtWorld, WorldView};

/// A scenario builder. Checkers re-create the environment from scratch for
/// every schedule (stateless exploration), so scenarios must be pure
/// functions of their configuration.
pub type Builder<'a> = &'a dyn Fn() -> hope_core::HopeEnv;

//! Facade-level coverage of surfaces not exercised elsewhere: partial
//! runs, mid-run introspection, threaded-env RPC streaming, and the
//! smaller public accessors.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use hope::hope_core::ThreadedHopeEnv;
use hope::prelude::*;
use hope_rpc::{RpcServer, StreamingClient};

#[test]
fn run_until_exposes_intermediate_speculation() {
    let mut env = HopeEnv::builder().seed(1).build();
    let pid = env.spawn_user("p", |ctx| {
        let x = ctx.aid_init();
        if ctx.guess(x) {
            ctx.compute(VirtualDuration::from_millis(10));
            ctx.affirm(x);
        }
    });
    // Stop mid-compute: the process must still be speculative.
    let mid = env.run_until(VirtualTime::from_nanos(5_000_000));
    assert!(mid.run.panics.is_empty());
    let speculative = env.speculative_processes();
    assert_eq!(speculative.len(), 1, "{speculative:?}");
    assert_eq!(speculative[0].0, pid);
    let history = env.history_of(pid).unwrap();
    assert!(history.iter().any(|r| !r.definite));
    // Finish: everything resolves.
    let done = env.run();
    assert!(done.is_clean());
    assert!(env.speculative_processes().is_empty());
    assert!(env.history_of(pid).unwrap().iter().all(|r| r.definite));
}

#[test]
fn reply_promise_exposes_its_aid() {
    let mut env = HopeEnv::builder().seed(2).build();
    let server = env.spawn_user("echo", |ctx| {
        RpcServer::serve(ctx, |_ctx, _m, body| body.clone());
    });
    let observed = Arc::new(Mutex::new(false));
    let o = observed.clone();
    env.spawn_user("client", move |ctx| {
        let promise = StreamingClient::call(
            ctx,
            server,
            0,
            Bytes::from_static(&[1]),
            Bytes::from_static(&[1]),
        );
        let aid = promise.aid();
        let (_, predicted) = promise.redeem(ctx);
        // The promise's AID is exactly what the redeem guessed.
        if !ctx.is_replaying() {
            *o.lock().unwrap() = predicted && ctx.current_deps().contains(&aid);
        }
    });
    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);
    assert!(*observed.lock().unwrap());
}

#[test]
fn threaded_env_runs_rpc_streaming() {
    let env = ThreadedHopeEnv::builder().seed(3).build();
    let results = Arc::new(Mutex::new(Vec::new()));
    let server = env.spawn_user("doubler", |ctx| {
        RpcServer::serve(ctx, |_ctx, _m, body| Bytes::from(vec![body[0] * 2]));
    });
    let r = results.clone();
    env.spawn_user("client", move |ctx| {
        // Right prediction then wrong prediction, under real threads.
        let p1 = StreamingClient::call(
            ctx,
            server,
            0,
            Bytes::from_static(&[4]),
            Bytes::from_static(&[8]),
        );
        let (v1, ok1) = p1.redeem(ctx);
        let p2 = StreamingClient::call(
            ctx,
            server,
            0,
            Bytes::from_static(&[5]),
            Bytes::from_static(&[99]),
        );
        let (v2, ok2) = p2.redeem(ctx);
        if !ctx.is_replaying() {
            r.lock().unwrap().push((v1[0], ok1, v2[0], ok2));
        }
    });
    let report = env.run_until_quiescent(Duration::from_millis(30), Duration::from_secs(20));
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    let seen = results.lock().unwrap().clone();
    let last = *seen.last().expect("client finished");
    assert_eq!(last.0, 8);
    assert_eq!(last.2, 10, "misprediction corrected under real threads");
    assert!(!last.3, "second call must report misprediction");
}

#[test]
fn metrics_display_is_comprehensive() {
    let mut env = HopeEnv::builder().seed(4).build();
    env.spawn_user("p", |ctx| {
        let x = ctx.aid_init();
        if ctx.guess(x) {
            ctx.deny(x);
            ctx.compute(VirtualDuration::from_millis(1));
        }
    });
    let report = env.run();
    let text = report.hope.to_string();
    for needle in ["guesses=1", "denies=1", "rollbacks=1", "aids_collected=0"] {
        assert!(text.contains(needle), "missing {needle} in: {text}");
    }
}

#[test]
fn hope_error_variants_render() {
    use hope_types::HopeError;
    let errors: Vec<HopeError> = vec![
        HopeError::FinalAid(AidId::from_raw(ProcessId::from_raw(1))),
        HopeError::UnknownProcess(ProcessId::from_raw(2)),
        HopeError::UnknownInterval(IntervalId::new(ProcessId::from_raw(3), 4)),
        HopeError::RuntimeStopped,
        HopeError::ProcessPanicked(ProcessId::from_raw(5), "boom".into()),
        HopeError::Codec("bad frame".into()),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn trace_capture_via_the_facade() {
    let mut env = HopeEnv::builder().seed(5).trace(128).build();
    env.spawn_user("p", |ctx| {
        let x = ctx.aid_init();
        if ctx.guess(x) {
            ctx.affirm(x);
        }
    });
    let report = env.run();
    assert!(report.is_clean());
    let trace = env.runtime().trace().expect("tracing enabled");
    let rendered = trace.render(true);
    assert!(rendered.contains("Guess"));
    assert!(rendered.contains("Affirm"));
    assert!(rendered.contains("Replace"));
}

//! Smoke tests asserting each experiment's headline *shape* (the claims
//! EXPERIMENTS.md records), at reduced scale so the suite stays fast.

use hope::hope_sim as sim;
use hope_types::VirtualDuration;

#[test]
fn f1_f2_streaming_speedup_and_crossover() {
    let base = sim::printer::PrinterConfig {
        latency: VirtualDuration::from_millis(10),
        ..sim::printer::PrinterConfig::default()
    };
    let seq_miss = sim::printer::run_sequential(base);
    let stream_miss = sim::printer::run_streaming(base);
    let speedup = seq_miss.worker_time.as_millis_f64() / stream_miss.worker_time.as_millis_f64();
    assert!(
        speedup > 1.8,
        "≈2x when the assumption holds: got {speedup:.2}x"
    );

    let hit = sim::printer::PrinterConfig {
        hit_boundary: true,
        ..base
    };
    let seq_hit = sim::printer::run_sequential(hit);
    let stream_hit = sim::printer::run_streaming(hit);
    assert!(
        stream_hit.worker_time > seq_hit.worker_time,
        "optimism must lose when the assumption always fails"
    );
}

#[test]
fn e3_improvement_reaches_the_paper_range() {
    let cfg = sim::chain::ChainConfig {
        depth: 8,
        ..sim::chain::ChainConfig::default()
    };
    let seq = sim::chain::run_sequential(cfg);
    let stream = sim::chain::run_streaming(cfg);
    let improvement = 1.0 - stream.quiescent.as_secs_f64() / seq.quiescent.as_secs_f64();
    assert!(
        improvement > 0.70,
        "the paper reports up to 70% improvement; got {:.1}%",
        improvement * 100.0
    );
}

#[test]
fn e4_primitives_flat_rpc_linear() {
    let lo = sim::waitfree::measure(VirtualDuration::from_millis(1), 1);
    let hi = sim::waitfree::measure(VirtualDuration::from_millis(100), 1);
    assert_eq!(lo.primitive_cost, VirtualDuration::ZERO);
    assert_eq!(hi.primitive_cost, VirtualDuration::ZERO);
    assert_eq!(hi.rpc_cost.as_nanos(), lo.rpc_cost.as_nanos() * 100);
}

#[test]
fn e5_message_growth_is_linear_under_delta_registration() {
    let n8 = sim::quadratic::measure(8, 1);
    let n16 = sim::quadratic::measure(16, 1);
    // Guess registrations follow N exactly (down from N(N+1)/2 under the
    // paper's per-holder registration; see DESIGN.md §6).
    assert_eq!(n8.guess_messages, 8);
    assert_eq!(n16.guess_messages, 16);
    // Per-assumption cost is flat in N (overall linear).
    let per8 = n8.total_hope as f64 / 8.0;
    let per16 = n16.total_hope as f64 / 16.0;
    assert!((per16 - per8).abs() < 0.01, "{per8} vs {per16}");
}

#[test]
fn f13_f14_algorithms_disagree_on_cycles() {
    let alg2 = sim::rings::run_ring(4, true, 5_000_000, 1);
    assert!(alg2.converged);
    assert_eq!(alg2.cycles_broken, 4);
    let alg1 = sim::rings::run_ring(4, false, 50_000, 1);
    assert!(!alg1.converged);
}

#[test]
fn e6_replay_cost_linear_in_depth() {
    let d4 = sim::rollback::measure(4, 4, 1);
    let d16 = sim::rollback::measure(16, 4, 1);
    assert!(d16.replayed_ops > d4.replayed_ops);
    assert_eq!(d4.reexecutions, 1, "one deny, one re-execution");
}

#[test]
fn t1_all_protocol_messages_observed() {
    let stats = sim::protocol::run_canonical(1);
    let table = sim::protocol::table_1(&stats);
    assert_eq!(table.rows.len(), 5);
}

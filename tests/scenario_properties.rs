//! Cross-crate property tests: the example scenarios (replication,
//! pipeline) must hold their invariants under randomized parameters and
//! seeds — optimism may change *when* things happen, never *what* the
//! committed outcome is.

use bytes::{BufMut, Bytes, BytesMut};
use hope::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const CH_CHECK: u32 = 10;
const CH_GET: u32 = 11;
const CH_SNAP: u32 = 12;

fn decode_u64s(data: &[u8]) -> Vec<u64> {
    data.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Optimistic replicated counter with `deltas.len()` replicas racing one
/// increment each; returns the owner's committed (version, value).
fn run_replication(deltas: &[u64], seed: u64) -> (u64, u64) {
    let mut env = HopeEnv::builder().seed(seed).build();
    let total = deltas.len() as u32;
    let owner_final = Arc::new(Mutex::new((0u64, 0u64)));
    let of = owner_final.clone();
    let owner = env.spawn_user("owner", move |ctx| {
        let mut version = 0u64;
        let mut value = 0u64;
        let mut applied = 0u32;
        while applied < total {
            let msg = ctx.receive(None);
            match msg.channel {
                CH_CHECK => {
                    let f = decode_u64s(&msg.data);
                    let aid = AidId::from_raw(ProcessId::from_raw(f[0]));
                    if f[1] == version {
                        value += f[2];
                        version += 1;
                        applied += 1;
                        ctx.affirm(aid);
                    } else {
                        ctx.deny(aid);
                    }
                }
                CH_GET => {
                    let mut b = BytesMut::with_capacity(16);
                    b.put_u64_le(version);
                    b.put_u64_le(value);
                    ctx.send(msg.src, CH_SNAP, b.freeze());
                }
                _ => {}
            }
        }
        if !ctx.is_replaying() {
            *of.lock().unwrap() = (version, value);
        }
    });
    for (i, &delta) in deltas.iter().enumerate() {
        env.spawn_user(&format!("replica-{i}"), move |ctx| {
            ctx.send(owner, CH_GET, Bytes::new());
            let snap = ctx.receive(Some(CH_SNAP));
            let mut version = decode_u64s(&snap.data)[0];
            loop {
                let fresh = ctx.aid_init();
                let mut b = BytesMut::with_capacity(24);
                b.put_u64_le(fresh.process().as_raw());
                b.put_u64_le(version);
                b.put_u64_le(delta);
                ctx.send(owner, CH_CHECK, b.freeze());
                if ctx.guess(fresh) {
                    return;
                }
                ctx.send(owner, CH_GET, Bytes::new());
                let snap = ctx.receive(Some(CH_SNAP));
                version = decode_u64s(&snap.data)[0];
            }
        });
    }
    let report = env.run();
    assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
    assert!(!report.run.hit_event_limit);
    let out = *owner_final.lock().unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replication_applies_every_update_exactly_once(
        deltas in proptest::collection::vec(1u64..1000, 1..5),
        seed in any::<u64>(),
    ) {
        let (version, value) = run_replication(&deltas, seed);
        prop_assert_eq!(version, deltas.len() as u64);
        prop_assert_eq!(value, deltas.iter().sum::<u64>());
    }

    #[test]
    fn replication_is_deterministic_per_seed(
        deltas in proptest::collection::vec(1u64..1000, 1..4),
        seed in any::<u64>(),
    ) {
        prop_assert_eq!(run_replication(&deltas, seed), run_replication(&deltas, seed));
    }
}

/// The pipeline scenario: only records passing validation reach the
/// collector, regardless of how speculation interleaves.
fn run_pipeline(records: &[u64], seed: u64) -> Vec<u64> {
    const CH_RECORD: u32 = 1;
    const CH_VALIDATE: u32 = 2;
    const CH_OUT: u32 = 3;
    let mut env = HopeEnv::builder().seed(seed).build();
    let n = records.len();
    let valid: Vec<u64> = records.iter().copied().filter(|v| v % 3 != 0).collect();
    let expect = valid.len();
    let collected = Arc::new(Mutex::new(Vec::new()));
    let col = collected.clone();
    let collector = env.spawn_user("collector", move |ctx| {
        let mut seen = Vec::new();
        for _ in 0..expect {
            let msg = ctx.receive(Some(CH_OUT));
            seen.push(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        }
        if !ctx.is_replaying() {
            *col.lock().unwrap() = seen.clone();
        }
    });
    let validator = env.spawn_user("validator", move |ctx| {
        for _ in 0..n {
            let msg = ctx.receive(Some(CH_VALIDATE));
            let f = decode_u64s(&msg.data);
            ctx.compute(VirtualDuration::from_millis(2));
            let aid = AidId::from_raw(ProcessId::from_raw(f[1]));
            if f[0].is_multiple_of(3) {
                ctx.deny(aid);
            } else {
                ctx.affirm(aid);
            }
        }
    });
    let transformer = env.spawn_user("transformer", move |ctx| {
        for _ in 0..n {
            let msg = ctx.receive(Some(CH_RECORD));
            let value = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            let ok = ctx.aid_init();
            let mut b = BytesMut::with_capacity(16);
            b.put_u64_le(value);
            b.put_u64_le(ok.process().as_raw());
            ctx.send(validator, CH_VALIDATE, b.freeze());
            if ctx.guess(ok) {
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(value * 2);
                ctx.send(collector, CH_OUT, out.freeze());
            }
        }
    });
    let recs = records.to_vec();
    env.spawn_user("producer", move |ctx| {
        for &value in &recs {
            let mut b = BytesMut::with_capacity(8);
            b.put_u64_le(value);
            ctx.send(transformer, CH_RECORD, b.freeze());
            ctx.compute(VirtualDuration::from_micros(100));
        }
    });
    let report = env.run();
    assert!(report.run.panics.is_empty(), "{:?}", report.run.panics);
    assert!(!report.run.hit_event_limit);
    let mut got = collected.lock().unwrap().clone();
    got.sort();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_commits_exactly_the_valid_records(
        records in proptest::collection::vec(1u64..100, 1..8),
        seed in any::<u64>(),
    ) {
        let got = run_pipeline(&records, seed);
        let mut want: Vec<u64> = records
            .iter()
            .filter(|v| *v % 3 != 0)
            .map(|v| v * 2)
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}

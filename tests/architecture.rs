//! F3 — the architecture of Figure 3, exercised through the `hope` facade:
//! user processes with attached HOPElibs, AID processes spawned by
//! `aid_init`, HOPE messages flowing between them, and user messages
//! carrying dependency tags.

use bytes::Bytes;
use hope::prelude::*;
use std::sync::{Arc, Mutex};

#[test]
fn prelude_exposes_the_public_surface() {
    // Construction through the facade builder with every knob.
    let env = HopeEnv::builder()
        .seed(1)
        .network(NetworkConfig::lan())
        .retract_policy(RetractPolicy::Keep)
        .deny_policy(DenyPolicy::Immediate)
        .cycle_detection(true)
        .build();
    assert_eq!(env.config(), HopeConfig::new());
}

#[test]
fn figure_3_message_flows() {
    // One guess resolved by a third party: the run must show User→AID
    // Guess/Affirm traffic and AID→User Replace traffic, plus a tagged
    // user message — the full structure of Figure 3.
    let mut env = HopeEnv::builder().seed(2).build();
    let verifier = env.spawn_user("verifier", |ctx| {
        let m = ctx.receive(None);
        let aid = AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
            m.data[..8].try_into().unwrap(),
        )));
        ctx.affirm(aid);
    });
    env.spawn_user("guesser", move |ctx| {
        let x = ctx.aid_init();
        ctx.send(
            verifier,
            0,
            Bytes::from(x.process().as_raw().to_le_bytes().to_vec()),
        );
        let _ = ctx.guess(x);
    });
    let report = env.run();
    assert!(report.is_clean());
    let stats = &report.run.stats;
    use hope::hope_runtime::PartyKind::{Aid, User};
    assert!(stats.count("Guess", User, Aid) >= 1);
    assert!(stats.count("Affirm", User, Aid) >= 1);
    assert!(stats.count("Replace", Aid, User) >= 1);
    assert!(stats.count("User", User, User) >= 1);
}

#[test]
fn history_introspection_shows_interval_lifecycle() {
    let mut env = HopeEnv::builder().seed(3).build();
    let pid = env.spawn_user("p", |ctx| {
        let x = ctx.aid_init();
        if ctx.guess(x) {
            ctx.affirm(x);
        }
    });
    let report = env.run();
    assert!(report.is_clean());
    let history = env.history_of(pid).expect("tracked process");
    assert_eq!(history.len(), 2, "root + one guess interval");
    assert!(history.iter().all(|r| r.definite));
    assert!(env.speculative_processes().is_empty());
}

#[test]
fn tagged_messages_propagate_dependencies_through_the_facade() {
    let mut env = HopeEnv::builder().seed(4).build();
    let downstream_deps = Arc::new(Mutex::new(None));
    let dd = downstream_deps.clone();
    let downstream = env.spawn_user("downstream", move |ctx| {
        let _ = ctx.receive(None);
        if !ctx.is_replaying() {
            *dd.lock().unwrap() = Some(ctx.current_deps());
        }
    });
    env.spawn_user("upstream", move |ctx| {
        let x = ctx.aid_init();
        if ctx.guess(x) {
            ctx.send(downstream, 0, Bytes::from_static(b"tainted"));
            ctx.affirm(x);
        }
    });
    let report = env.run();
    assert!(report.is_clean());
    let deps = downstream_deps.lock().unwrap().clone().unwrap();
    assert_eq!(
        deps.len(),
        1,
        "the receiver must have inherited exactly the sender's assumption"
    );
}

//! Quickstart: the four HOPE primitives in one small program.
//!
//! A guesser makes an optimistic assumption and runs ahead; a remote
//! verifier affirms or denies it after doing the real check. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope::prelude::*;

fn main() {
    let mut env = HopeEnv::builder()
        .seed(7)
        .network(hope::hope_runtime::NetworkConfig::wan())
        .build();

    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // The verifier: receives an assumption identifier and, after 5 ms of
    // "verification work", decides it was wrong.
    let vlog = log.clone();
    let verifier = env.spawn_user("verifier", move |ctx| {
        let msg = ctx.receive(None);
        let aid = AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
            msg.data[..8].try_into().unwrap(),
        )));
        ctx.compute(VirtualDuration::from_millis(5));
        vlog.lock().unwrap().push(format!(
            "[{}] verifier: the assumption does NOT hold — deny",
            ctx.now()
        ));
        ctx.deny(aid);
    });

    // The guesser: assumes success, runs ahead, and is rolled back onto
    // the pessimistic path when the deny lands.
    let glog = log.clone();
    env.spawn_user("guesser", move |ctx| {
        let x = ctx.aid_init();
        ctx.send(
            verifier,
            0,
            Bytes::from(x.process().as_raw().to_le_bytes().to_vec()),
        );
        if ctx.guess(x) {
            glog.lock().unwrap().push(format!(
                "[{}] guesser: optimistic path (speculative)",
                ctx.now()
            ));
            // Plenty of useful work happens here while the verifier works…
            ctx.compute(VirtualDuration::from_millis(50));
            glog.lock()
                .unwrap()
                .push(format!("[{}] guesser: finished optimistic work", ctx.now()));
        } else {
            glog.lock().unwrap().push(format!(
                "[{}] guesser: pessimistic path (after rollback)",
                ctx.now()
            ));
        }
    });

    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);

    println!("--- event log (virtual time) ---");
    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
    println!("--- metrics ---");
    println!("{}", report.hope);
    assert_eq!(report.hope.rollbacks, 1, "exactly one interval rolled back");
    println!("\nThe optimistic branch ran eagerly, was rolled back when the");
    println!("assumption was denied, and the pessimistic branch replaced it —");
    println!("with no explicit bookkeeping in the user code.");
}

//! Optimistic replication (the paper's §6 pointer to "Optimistic
//! Replication in HOPE" \[5\]).
//!
//! Two replicas apply client increments to a replicated counter
//! *optimistically*, assuming their cached version is still current, and
//! report results downstream immediately. The owner validates each update
//! against the authoritative version: a stale update is denied, rolling
//! the replica — and the auditor who already consumed its speculative
//! report — back automatically; the replica then refetches and reapplies.
//! Run with:
//!
//! ```sh
//! cargo run --example replicated_counter
//! ```

use std::sync::{Arc, Mutex};

use bytes::{BufMut, Bytes, BytesMut};
use hope::prelude::*;

const CH_CHECK: u32 = 10; // replica -> owner: optimistic update
const CH_GET: u32 = 11; // replica -> owner: refetch request
const CH_SNAP: u32 = 12; // owner -> replica: authoritative snapshot
const CH_REPORT: u32 = 13; // replica -> auditor: (replica id, value)

fn encode_check(aid: AidId, version: u64, delta: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(24);
    b.put_u64_le(aid.process().as_raw());
    b.put_u64_le(version);
    b.put_u64_le(delta);
    b.freeze()
}

fn decode_u64s(data: &[u8]) -> Vec<u64> {
    data.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn main() {
    let mut env = HopeEnv::builder().seed(11).build();
    let trace: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    let total_updates = 2u32;

    // The owner holds the authoritative (version, value) pair and
    // validates optimistic updates by version comparison.
    let owner_final = Arc::new(Mutex::new((0u64, 0u64)));
    let of = owner_final.clone();
    let ot = trace.clone();
    let owner = env.spawn_user("owner", move |ctx| {
        let mut version = 0u64;
        let mut value = 0u64;
        let mut applied = 0u32;
        while applied < total_updates {
            let msg = ctx.receive(None);
            match msg.channel {
                CH_CHECK => {
                    let fields = decode_u64s(&msg.data);
                    let aid = AidId::from_raw(ProcessId::from_raw(fields[0]));
                    let (their_version, delta) = (fields[1], fields[2]);
                    if their_version == version {
                        value += delta;
                        version += 1;
                        applied += 1;
                        ot.lock().unwrap().push(format!(
                            "owner: v{their_version} update (+{delta}) accepted -> value {value}"
                        ));
                        ctx.affirm(aid);
                    } else {
                        ot.lock().unwrap().push(format!(
                            "owner: v{their_version} update rejected (authoritative v{version})"
                        ));
                        ctx.deny(aid);
                    }
                }
                CH_GET => {
                    let mut b = BytesMut::with_capacity(16);
                    b.put_u64_le(version);
                    b.put_u64_le(value);
                    ctx.send(msg.src, CH_SNAP, b.freeze());
                }
                _ => {}
            }
        }
        if !ctx.is_replaying() {
            *of.lock().unwrap() = (version, value);
        }
    });

    // The auditor consumes replica reports — speculative ones included.
    // If a report's speculation dies, the auditor rolls back with it.
    let audit = Arc::new(Mutex::new(std::collections::BTreeMap::new()));
    let au = audit.clone();
    let auditor = env.spawn_user("auditor", move |ctx| {
        for _ in 0..total_updates {
            let msg = ctx.receive(Some(CH_REPORT));
            let fields = decode_u64s(&msg.data);
            if !ctx.is_replaying() {
                au.lock().unwrap().insert(fields[0], fields[1]);
            }
        }
    });

    // Two replicas, each applying one increment from the same initial
    // snapshot — guaranteeing a version conflict.
    for (replica_id, delta) in [(1u64, 10u64), (2u64, 32u64)] {
        let rt = trace.clone();
        env.spawn_user(&format!("replica-{replica_id}"), move |ctx| {
            // Initial snapshot.
            ctx.send(owner, CH_GET, Bytes::new());
            let snap = ctx.receive(Some(CH_SNAP));
            let fields = decode_u64s(&snap.data);
            let (mut version, mut base) = (fields[0], fields[1]);
            loop {
                let fresh = ctx.aid_init();
                ctx.send(owner, CH_CHECK, encode_check(fresh, version, delta));
                if ctx.guess(fresh) {
                    // Optimistic: report immediately, speculatively.
                    let optimistic = base + delta;
                    if !ctx.is_replaying() {
                        rt.lock().unwrap().push(format!(
                            "replica-{replica_id}: optimistic value {optimistic} (v{version})"
                        ));
                    }
                    let mut b = BytesMut::with_capacity(16);
                    b.put_u64_le(replica_id);
                    b.put_u64_le(optimistic);
                    ctx.send(auditor, CH_REPORT, b.freeze());
                    return;
                }
                // Denied: our snapshot was stale. Refetch and retry.
                if !ctx.is_replaying() {
                    rt.lock().unwrap().push(format!(
                        "replica-{replica_id}: conflict at v{version}; refetching"
                    ));
                }
                ctx.send(owner, CH_GET, Bytes::new());
                let snap = ctx.receive(Some(CH_SNAP));
                let fields = decode_u64s(&snap.data);
                version = fields[0];
                base = fields[1];
            }
        });
    }

    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);

    println!("--- trace ---");
    for line in trace.lock().unwrap().iter() {
        println!("{line}");
    }
    let (version, value) = *owner_final.lock().unwrap();
    println!("\nowner final: version {version}, value {value}");
    assert_eq!(value, 42, "both increments must apply exactly once");
    assert_eq!(version, 2);

    let audit = audit.lock().unwrap();
    println!("auditor saw: {audit:?}");
    // The conflicting replica's speculative report was rolled back and
    // replaced by the corrected value; both audited values are consistent
    // with a serial application order.
    let mut audited: Vec<u64> = audit.values().copied().collect();
    audited.sort();
    assert!(
        audited == vec![10, 42] || audited == vec![32, 42],
        "audited values must reflect a serial order: {audited:?}"
    );
    println!(
        "\nrollbacks: {} (the losing replica and its auditor)",
        report.hope.rollbacks
    );
    assert!(report.hope.rollbacks >= 1);
}

//! A speculative processing pipeline: stages forward work optimistically
//! before upstream validation completes (optimism in the style the paper
//! attributes to fault-tolerance and simulation systems, here exposed as
//! plain application code).
//!
//! A producer emits records; a transformer forwards each downstream
//! immediately under the assumption "this record will validate", while a
//! validator checks records in parallel and denies the bad ones. The
//! collector — two hops away from the validator — ends up with exactly
//! the valid records, purely through HOPE's transitive rollback. Run with:
//!
//! ```sh
//! cargo run --example pipeline
//! ```

use std::sync::{Arc, Mutex};

use bytes::{BufMut, BytesMut};
use hope::prelude::*;

const CH_RECORD: u32 = 1; // producer -> transformer
const CH_VALIDATE: u32 = 2; // transformer -> validator
const CH_OUT: u32 = 3; // transformer -> collector

fn main() {
    let mut env = HopeEnv::builder().seed(21).build();

    // Records: value, with "bad" ones being multiples of 3.
    let records: Vec<u64> = vec![4, 6, 7, 9, 11, 12, 14];
    let valid: Vec<u64> = records.iter().copied().filter(|v| v % 3 != 0).collect();
    let n = records.len();

    // Collector: gathers transformed outputs; a speculative delivery that
    // later fails validation is rolled back out from under it (the
    // receive re-blocks), so counting to the number of *valid* records is
    // sound even though invalid ones may be consumed along the way.
    let expect = valid.len();
    let collected = Arc::new(Mutex::new(Vec::new()));
    let col = collected.clone();
    let collector = env.spawn_user("collector", move |ctx| {
        let mut seen = Vec::new();
        for _ in 0..expect {
            let msg = ctx.receive(Some(CH_OUT));
            seen.push(u64::from_le_bytes(msg.data[..8].try_into().unwrap()));
        }
        if !ctx.is_replaying() {
            *col.lock().unwrap() = seen.clone();
        }
    });

    // Validator: checks each record (slowly) and affirms/denies.
    let validator = env.spawn_user("validator", move |ctx| {
        for _ in 0..n {
            let msg = ctx.receive(Some(CH_VALIDATE));
            let value = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            let aid = AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
                msg.data[8..16].try_into().unwrap(),
            )));
            ctx.compute(VirtualDuration::from_millis(2)); // slow validation
            if value % 3 == 0 {
                ctx.deny(aid);
            } else {
                ctx.affirm(aid);
            }
        }
    });

    // Transformer: doubles each record and forwards it downstream
    // *immediately*, speculating that validation will pass. On a denial
    // it rolls back to the guess and simply skips the record.
    let transformer = env.spawn_user("transformer", move |ctx| {
        for _ in 0..n {
            let msg = ctx.receive(Some(CH_RECORD));
            let value = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            let ok = ctx.aid_init();
            let mut b = BytesMut::with_capacity(16);
            b.put_u64_le(value);
            b.put_u64_le(ok.process().as_raw());
            ctx.send(validator, CH_VALIDATE, b.freeze());
            if ctx.guess(ok) {
                // Speculative transform + forward.
                let mut out = BytesMut::with_capacity(8);
                out.put_u64_le(value * 2);
                ctx.send(collector, CH_OUT, out.freeze());
            }
            // Pessimistic path: the record failed validation — skip it.
        }
    });

    // Producer: fires all records up front.
    env.spawn_user("producer", move |ctx| {
        for &value in &records {
            let mut b = BytesMut::with_capacity(8);
            b.put_u64_le(value);
            ctx.send(transformer, CH_RECORD, b.freeze());
            ctx.compute(VirtualDuration::from_micros(100));
        }
    });

    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);

    let mut got = collected.lock().unwrap().clone();
    got.sort();
    let mut want: Vec<u64> = valid.iter().map(|v| v * 2).collect();
    want.sort();
    println!("collected (doubled, valid only): {got:?}");
    println!("rollbacks along the way: {}", report.hope.rollbacks);
    assert_eq!(got, want, "exactly the valid records survive");
    assert!(
        report.hope.rollbacks >= 2,
        "the bad records were speculated on"
    );
    println!("\nEvery stage ran at full speed; the validator's denials unwound");
    println!("the bad records from the whole pipeline automatically.");
}

//! Recovery blocks via optimism — the paper's §6 pointer to
//! application-oriented software fault tolerance \[18\].
//!
//! The classic recovery-block pattern runs a *primary* algorithm, applies
//! an acceptance test, and falls back to an *alternate* algorithm if the
//! test fails. With HOPE the acceptance test runs **in parallel** on
//! another process while downstream work proceeds on the primary's result;
//! a failed test denies the assumption and the fallback replaces the
//! primary's effects everywhere, transitively. Run with:
//!
//! ```sh
//! cargo run --example recovery_blocks
//! ```

use std::sync::{Arc, Mutex};

use bytes::{BufMut, BytesMut};
use hope::prelude::*;

/// The primary algorithm: a fast approximate integer square root
/// (deliberately buggy for large inputs).
fn primary_isqrt(x: u64) -> u64 {
    // Newton's method with a bad initial guess and too few iterations —
    // fast, usually right, wrong for some inputs.
    if x < 2 {
        return x;
    }
    let mut r = x >> ((63 - x.leading_zeros()) / 2);
    for _ in 0..3 {
        r = (r + x / r) / 2;
    }
    r
}

/// The alternate algorithm: slow but correct.
fn alternate_isqrt(x: u64) -> u64 {
    let mut r = 0u64;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    r
}

/// The acceptance test.
fn acceptable(x: u64, r: u64) -> bool {
    r * r <= x && (r + 1) * (r + 1) > x
}

fn main() {
    let mut env = HopeEnv::builder().seed(13).build();
    let inputs: Vec<u64> = vec![16, 1_000_003, 99, 123_456_789, 2, 7_777_777];
    let n = inputs.len();

    // Downstream consumer: sums the (possibly speculative) results; wrong
    // primaries are rolled back out from under it and replaced.
    let total = Arc::new(Mutex::new(0u64));
    let t = total.clone();
    let consumer = env.spawn_user("consumer", move |ctx| {
        let mut sum = 0u64;
        for _ in 0..n {
            let msg = ctx.receive(None);
            sum += u64::from_le_bytes(msg.data[..8].try_into().unwrap());
        }
        if !ctx.is_replaying() {
            *t.lock().unwrap() = sum;
        }
    });

    // Acceptance tester: runs the (expensive) test off the critical path.
    let tester = env.spawn_user("acceptance-test", move |ctx| {
        for _ in 0..n {
            let msg = ctx.receive(None);
            let f: Vec<u64> = msg
                .data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let (aid_raw, x, r) = (f[0], f[1], f[2]);
            let aid = AidId::from_raw(ProcessId::from_raw(aid_raw));
            ctx.compute(VirtualDuration::from_millis(1)); // the test itself
            if acceptable(x, r) {
                ctx.affirm(aid);
            } else {
                ctx.deny(aid);
            }
        }
    });

    // The worker: primary result speculatively, alternate on rollback.
    let fallbacks = Arc::new(Mutex::new(0u32));
    let fb = fallbacks.clone();
    let worker_inputs = inputs.clone();
    env.spawn_user("worker", move |ctx| {
        for &x in &worker_inputs {
            let ok = ctx.aid_init();
            let fast = primary_isqrt(x);
            // Ship the primary result for testing…
            let mut b = BytesMut::with_capacity(24);
            b.put_u64_le(ok.process().as_raw());
            b.put_u64_le(x);
            b.put_u64_le(fast);
            ctx.send(tester, 0, b.freeze());
            // …and proceed on it optimistically.
            let result = if ctx.guess(ok) {
                fast
            } else {
                // Acceptance test failed: the alternate block.
                if !ctx.is_replaying() {
                    *fb.lock().unwrap() += 1;
                }
                alternate_isqrt(x)
            };
            let mut out = BytesMut::with_capacity(8);
            out.put_u64_le(result);
            ctx.send(consumer, 0, out.freeze());
        }
    });

    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);

    let expected: u64 = inputs.iter().map(|&x| alternate_isqrt(x)).sum();
    let got = *total.lock().unwrap();
    let fell_back = *fallbacks.lock().unwrap();
    println!("inputs:            {inputs:?}");
    println!("consumer total:    {got} (reference {expected})");
    println!("fallbacks taken:   {fell_back}");
    println!("rollbacks:         {}", report.hope.rollbacks);
    assert_eq!(got, expected, "recovery blocks must yield correct results");
    assert!(
        fell_back >= 1,
        "the buggy primary should fail at least one acceptance test"
    );
    println!("\nThe acceptance tests ran off the critical path; only the");
    println!("inputs the primary got wrong paid the alternate's cost, and");
    println!("downstream consumers were repaired automatically.");
}

//! Call streaming: the paper's §3.1 printer example (Figures 1 and 2).
//!
//! Compares the untransformed worker (three synchronous RPCs to a remote
//! print server) with the HOPE call-streaming transformation (a WorryWart
//! process verifies the `PartPage` assumption while the worker runs
//! ahead), across the paper's motivating transcontinental link. Run with:
//!
//! ```sh
//! cargo run --release --example call_streaming
//! ```

use hope::hope_sim::printer::{run_sequential, run_streaming, PrinterConfig};
use hope::prelude::*;

fn main() {
    // The paper's motivating numbers: a 30 ms transcontinental round trip.
    let base = PrinterConfig {
        latency: VirtualDuration::from_millis(15),
        ..PrinterConfig::default()
    };

    println!("printer workload over a 15 ms (one-way) transcontinental link\n");

    // Common case: the report does not end at the page boundary.
    let seq = run_sequential(base);
    let stream = run_streaming(base);
    println!("common case (assumption holds):");
    println!(
        "  Figure 1 (sequential):   worker done at {}",
        seq.worker_time
    );
    println!(
        "  Figure 2 (streaming):    worker done at {}",
        stream.worker_time
    );
    println!(
        "  speedup: {:.2}x   rollbacks: {}\n",
        seq.worker_time.as_millis_f64() / stream.worker_time.as_millis_f64(),
        stream.rollbacks
    );
    assert_eq!(seq.final_line, stream.final_line, "identical server state");
    assert!(stream.worker_time < seq.worker_time);

    // Boundary case: the optimistic assumption is wrong.
    let hit = PrinterConfig {
        hit_boundary: true,
        ..base
    };
    let seq_hit = run_sequential(hit);
    let stream_hit = run_streaming(hit);
    println!("boundary case (assumption fails — rollback + newpage):");
    println!(
        "  Figure 1 (sequential):   worker done at {}",
        seq_hit.worker_time
    );
    println!(
        "  Figure 2 (streaming):    worker done at {}",
        stream_hit.worker_time
    );
    println!(
        "  rollbacks: {}   final line (both): {}\n",
        stream_hit.rollbacks, stream_hit.final_line
    );
    assert_eq!(seq_hit.final_line, stream_hit.final_line);
    assert!(stream_hit.rollbacks >= 1);

    // Causality-violation case: zero local work lets S3 overtake S1; the
    // WorryWart's free_of(Order) detects it and forces corrective
    // rollbacks — the paper's §3.1 `Order` mechanism in action.
    let racy = PrinterConfig {
        local_work: VirtualDuration::ZERO,
        ..base
    };
    let seq_racy = run_sequential(racy);
    let stream_racy = run_streaming(racy);
    println!("ordering-violation case (S3 overtakes S1; free_of(Order) corrects):");
    println!(
        "  rollbacks: {}   final line: {} (sequential reference: {})",
        stream_racy.rollbacks, stream_racy.final_line, seq_racy.final_line
    );
    assert_eq!(seq_racy.final_line, stream_racy.final_line);
    assert!(stream_racy.rollbacks >= 1);

    println!("\nOptimism wins when assumptions usually hold, pays a bounded");
    println!("price when they fail, and the free_of primitive repairs even");
    println!("message-ordering races — all with automatic dependency tracking.");
}

//! A miniature truth-maintenance system (the paper's §6 pointer to
//! Doyle's TMS \[12\]) built on HOPE assumptions.
//!
//! The classic non-monotonic example: assume *Tweety flies* and derive
//! consequences; when the fact *Tweety is a penguin* arrives, the
//! assumption is denied and every derived belief — including ones already
//! shipped to another process — is withdrawn automatically by HOPE's
//! dependency tracking, then re-derived under the corrected assumption.
//! Run with:
//!
//! ```sh
//! cargo run --example tms
//! ```

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use hope::prelude::*;

fn main() {
    let mut env = HopeEnv::builder().seed(3).build();
    let beliefs: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // The planner consumes derived beliefs (speculative or not) and keeps
    // the last consistent plan it saw.
    let plan = Arc::new(Mutex::new(String::new()));
    let p = plan.clone();
    let planner = env.spawn_user("planner", move |ctx| {
        // One plan per derivation round; the speculative one is rolled
        // back (this receive rolls back with it) when the assumption dies.
        let msg = ctx.receive(None);
        if !ctx.is_replaying() {
            *p.lock().unwrap() = String::from_utf8_lossy(&msg.data).to_string();
        }
    });

    // The reasoner: assumes "tweety flies", derives and ships beliefs.
    let b = beliefs.clone();
    let reasoner = env.spawn_user("reasoner", move |ctx| {
        // Receive the assumption identifier from the knowledge base.
        let msg = ctx.receive(None);
        let flies = AidId::from_raw(ProcessId::from_raw(u64::from_le_bytes(
            msg.data[..8].try_into().unwrap(),
        )));
        if ctx.guess(flies) {
            if !ctx.is_replaying() {
                b.lock().unwrap().push("believe: tweety flies".into());
                b.lock().unwrap().push("derive: build a high perch".into());
            }
            ctx.send(
                planner,
                0,
                Bytes::from_static(b"plan: install perch on the ceiling"),
            );
        } else {
            if !ctx.is_replaying() {
                b.lock().unwrap().push("withdraw: tweety flies".into());
                b.lock().unwrap().push("derive: build a ground nest".into());
            }
            ctx.send(planner, 0, Bytes::from_static(b"plan: build ground nest"));
        }
    });

    // The knowledge base: publishes the assumption, then later learns the
    // contradicting fact and denies it.
    env.spawn_user("knowledge-base", move |ctx| {
        let flies = ctx.aid_init();
        ctx.send(
            reasoner,
            0,
            Bytes::from(flies.process().as_raw().to_le_bytes().to_vec()),
        );
        // …time passes; a new observation arrives…
        ctx.compute(VirtualDuration::from_millis(20));
        // fact: penguin(tweety) ⇒ ¬flies(tweety)
        ctx.deny(flies);
    });

    let report = env.run();
    assert!(report.is_clean(), "{:?}", report.run.panics);

    println!("--- belief revision trace ---");
    for line in beliefs.lock().unwrap().iter() {
        println!("{line}");
    }
    let final_plan = plan.lock().unwrap().clone();
    println!("\nfinal plan: {final_plan}");
    assert_eq!(final_plan, "plan: build ground nest");
    let trace = beliefs.lock().unwrap().clone();
    assert!(trace.contains(&"believe: tweety flies".to_string()));
    assert!(trace.contains(&"derive: build a ground nest".to_string()));
    println!(
        "\n{} rollback(s) retracted the speculative beliefs — the TMS's",
        report.hope.rollbacks
    );
    println!("justification bookkeeping came entirely from HOPE.");
}
